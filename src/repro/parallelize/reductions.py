"""Reduction recognition.

A scalar ``s`` is a reduction in a loop when every statement touching it
has the shape ``s = s ⊕ expr`` (⊕ in ``+ - * min max``) with ``s``
appearing nowhere else in the loop (not in conditions, subscripts, other
right-hand sides, or call arguments).  Such loops parallelize with a
per-processor partial result combined afterwards — the standard treatment
the Polaris/Panorama generation of compilers applied.

Array reductions ``A(e) = A(e) ⊕ expr`` (same subscript on both sides) are
recognized the same way.

Guarded conditional assignments ``IF (e .GT. t) t = e`` are the
comparison-written form of ``t = max(t, e)`` (and ``.LT.`` of ``min``):
the guard is the only place the accumulator is read, so the usual
"accumulator appears nowhere else" rule gets a per-statement exemption
when the guard and the assignment pair up exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fortran.ast_nodes import Apply, Assign, BinOp, Expr, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    IfConditionNode,
    LoopNode,
)

_REDUCTION_INTRINSICS = {"min", "max", "amin1", "amax1", "min0", "max0",
                         "dmin1", "dmax1"}


@dataclass(frozen=True)
class Reduction:
    name: str
    operator: str  # '+', '-', '*', 'min', 'max'
    is_array: bool


def _same_expr(a: Expr, b: Expr) -> bool:
    return str(a) == str(b)


def _reduction_shape(stmt: Assign) -> str | None:
    """The reduction operator if ``stmt`` is ``t = t ⊕ e``, else ``None``."""
    target = stmt.target
    value = stmt.value

    def is_target(e: Expr) -> bool:
        if isinstance(target, NameRef):
            return isinstance(e, NameRef) and e.name == target.name
        if isinstance(target, Apply):
            return (
                isinstance(e, Apply)
                and e.name == target.name
                and len(e.args) == len(target.args)
                and all(_same_expr(x, y) for x, y in zip(e.args, target.args))
            )
        return False

    def flatten(e: Expr, op: str, sign: int) -> list[tuple[Expr, int]]:
        """Signed terms of an associative ``op`` chain ('-' folds into '+')."""
        if isinstance(e, BinOp) and (
            e.op == op or (op == "+" and e.op == "-")
        ):
            right_sign = -sign if e.op == "-" else sign
            return flatten(e.left, op, sign) + flatten(e.right, op, right_sign)
        return [(e, sign)]

    if isinstance(value, BinOp) and value.op in ("+", "-", "*"):
        op = "+" if value.op in ("+", "-") else "*"
        terms = flatten(value, op, 1)
        hits = [(t, s) for t, s in terms if is_target(t)]
        if len(hits) == 1 and hits[0][1] == 1:
            # accumulator appears exactly once, positively
            return op
    if (
        isinstance(value, Apply)
        and value.is_array is False
        and value.name in _REDUCTION_INTRINSICS
        and any(is_target(arg) for arg in value.args)
    ):
        return "min" if "min" in value.name else "max"
    return None


def _count_occurrences(expr: Expr, name: str) -> int:
    count = 0
    for node in expr.walk():
        if isinstance(node, (NameRef, Apply)) and node.name == name:
            count += 1
    return count


#: relation → operator when the guard reads ``e REL t`` (assigning t = e);
#: flipped when the target is on the left
_GUARD_OPS = {".gt.": "max", ".ge.": "max", ".lt.": "min", ".le.": "min"}
_FLIP = {"max": "min", "min": "max"}


def _guarded_minmax(
    graph: FlowGraph, cond: IfConditionNode
) -> tuple[str, Assign, str] | None:
    """Match ``IF (e REL t) t = e`` → ``(name, assign, 'min'|'max')``.

    The True arm must be a single-assignment basic block whose target is
    one side of the relation and whose value is the other side — exactly
    the conditional-replacement idiom of min/max searches.
    """
    guard = cond.cond
    if not isinstance(guard, BinOp) or guard.op not in _GUARD_OPS:
        return None
    arm = None
    for succ, label in graph.succs(cond):
        if label is True:
            if not isinstance(succ, BasicBlockNode):
                return None
            stmts = [s for s in succ.stmts if isinstance(s, Assign)]
            if len(stmts) != 1 or len(succ.stmts) != 1:
                return None
            arm = stmts[0]
    if arm is None:
        return None
    target = arm.target
    if isinstance(target, NameRef):
        name = target.name
    elif isinstance(target, Apply):
        name = target.name
    else:
        return None
    if _count_occurrences(arm.value, name):
        return None
    for t_side, e_side, flip in (
        (guard.right, guard.left, False),
        (guard.left, guard.right, True),
    ):
        if _same_expr(t_side, target) and _same_expr(e_side, arm.value):
            op = _GUARD_OPS[guard.op]
            return name, arm, _FLIP[op] if flip else op
    return None


def find_reductions(body: FlowGraph) -> list[Reduction]:
    """Reductions over the statements of a loop body subgraph."""
    assigns: list[Assign] = []
    other_exprs: list[Expr] = []
    cond_sites: list[tuple[FlowGraph, IfConditionNode]] = []

    def scan(graph: FlowGraph) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    if isinstance(stmt, Assign):
                        assigns.append(stmt)
                    else:
                        for block in stmt.body_blocks():
                            pass
            elif isinstance(node, IfConditionNode):
                other_exprs.append(node.cond)
                cond_sites.append((graph, node))
            elif isinstance(node, LoopNode):
                other_exprs.append(node.start)
                other_exprs.append(node.stop)
                if node.step is not None:
                    other_exprs.append(node.step)
                scan(node.body)
            elif isinstance(node, CallNode):
                other_exprs.extend(node.call.args)
            elif isinstance(node, CondensedNode):
                for member in node.members:
                    if isinstance(member, BasicBlockNode):
                        for stmt in member.stmts:
                            if isinstance(stmt, Assign):
                                other_exprs.append(stmt.target)
                                other_exprs.append(stmt.value)

    scan(body)

    # guarded min/max pairs: guard + arm are exempt from the
    # "appears nowhere else" rule for their own accumulator
    minmax: dict[str, list[tuple[Expr, Assign, str]]] = {}
    for graph, cond in cond_sites:
        matched = _guarded_minmax(graph, cond)
        if matched is not None:
            name, arm, op = matched
            minmax.setdefault(name, []).append((cond.cond, arm, op))

    # group candidate statements by target name
    by_name: dict[str, list[Assign]] = {}
    for stmt in assigns:
        name = stmt.target.name  # type: ignore[union-attr]
        by_name.setdefault(name, []).append(stmt)

    out: list[Reduction] = []
    for name, stmts in sorted(by_name.items()):
        pairs = minmax.get(name, [])
        guarded_arms = [arm for _g, arm, _op in pairs]
        guard_exprs = [g for g, _arm, _op in pairs]
        plain = [s for s in stmts if s not in guarded_arms]
        ops = {_reduction_shape(s) for s in plain}
        ops |= {op for _g, _arm, op in pairs}
        if None in ops or len(ops) != 1:
            continue
        (op,) = ops
        # the name must not appear anywhere outside its reduction
        # statements (matched guards excepted: they ARE the ⊕ read)
        if any(
            _count_occurrences(e, name)
            for e in other_exprs
            if not any(e is g for g in guard_exprs)
        ):
            continue
        if any(
            _count_occurrences(other.value, name)
            or _count_occurrences(other.target, name)
            for other in assigns
            if other not in stmts
        ):
            continue
        # each plain reduction statement reads the target exactly once
        # on the rhs; guarded arms read it exactly once — in the guard
        if any(_count_occurrences(s.value, name) != 1 for s in plain):
            continue
        if any(_count_occurrences(g, name) != 1 for g in guard_exprs):
            continue
        is_array = isinstance(stmts[0].target, Apply)
        out.append(Reduction(name, op, is_array))  # type: ignore[arg-type]
    return out
