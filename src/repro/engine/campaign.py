"""``panorama-campaign``: seeded mass corpora, sharding, and rollups.

A *campaign* is a fleet-scale measurement run: a deterministic mass
generator scales the synthetic kernels to tens of thousands of
programs, a ``--shard i/N`` partitioner splits one corpus across N
independent engine processes sharing one durable cache tier, and the
rollup mode merges the per-shard ``--stats-json`` exports into a single
scoreboard (verdict histogram, cache hit rates, wall-clock).

Determinism is the contract: the corpus is a pure function of
``(seed, generator version, count, knobs)``, every shard records that
provenance in its stats export, and the rollup refuses to merge shards
generated from different seeds — so any scoreboard line can be
reproduced exactly from the line itself.

The corpus is deliberately *caller-heavy*: a pool of library routines
(:func:`~repro.kernels.synthetic.make_routine`) repeats across many
app items (driver + embedded library sources), so identical routines
carry identical summary fingerprints in every item that embeds them.
That is the workload where the shared cache tier and the topology
scheduler earn their keep (``benchmarks/bench_campaign.py``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Any, Optional, Sequence

from ..kernels.synthetic import (
    ROUTINE_PATTERNS,
    make_driver,
    make_loop_nest,
    make_routine,
)
from .batch import BatchItem

#: bump when the generator's output changes for a fixed seed (recorded
#: in every rollup so old scoreboard lines stay reproducible against
#: the code that produced them)
GENERATOR_VERSION = 1

#: declared array extents the generator draws from
_SPANS = (200, 500, 1000)


# --------------------------------------------------------------------------- #
# generation
# --------------------------------------------------------------------------- #


def build_library(seed: int, size: int) -> list[tuple[str, str]]:
    """The campaign's routine pool: *size* ``(name, source)`` pairs.

    Names encode the draw index so the pool is collision-free; sources
    repeat patterns and spans, so distinct routines still share
    analysis structure (and distinct *items* embedding the same routine
    share fingerprints).
    """
    # string seeds hash via sha512 (deterministic across processes,
    # unlike tuple seeds which fall back to randomized hash())
    rng = random.Random(f"panorama-library-v{GENERATOR_VERSION}-{seed}")
    pool: list[tuple[str, str]] = []
    for idx in range(size):
        pattern = rng.choice(ROUTINE_PATTERNS)
        span = rng.choice(_SPANS)
        name = f"L{idx:03d}{pattern[:3].upper()}"
        pool.append((name, make_routine(name, pattern, span)))
    return pool


def generate_campaign(
    count: int,
    seed: int = 0,
    library_size: Optional[int] = None,
    max_calls: int = 3,
) -> list[BatchItem]:
    """A deterministic corpus of *count* batch items.

    The mix is caller-heavy: ~1/4 *library* items (one bare routine
    from the pool — the pure providers the topology scheduler orders
    first), ~3/5 *app* items (a driver calling 1..max_calls pool
    routines, sources embedded), and the rest self-contained
    ``make_loop_nest`` scaling programs.  Repeat runs with the same
    ``(seed, count, knobs)`` produce byte-identical corpora.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if library_size is None:
        library_size = max(4, min(64, count // 8))
    library = build_library(seed, library_size)
    rng = random.Random(
        f"panorama-campaign-v{GENERATOR_VERSION}-{seed}-{count}"
    )
    items: list[BatchItem] = []
    for k in range(count):
        roll = rng.random()
        if roll < 0.25:
            name, source = library[rng.randrange(len(library))]
            items.append(BatchItem(name=f"lib-{k:06d}-{name}", source=source))
        elif roll < 0.85:
            picks = rng.sample(
                range(len(library)), k=rng.randint(1, min(max_calls, len(library)))
            )
            callees = [library[i][0] for i in picks]
            source = make_driver(
                f"APP{k:06d}", callees, trips=rng.choice((20, 50, 80))
            ) + "".join(library[i][1] for i in picks)
            items.append(BatchItem(name=f"app-{k:06d}", source=source))
        else:
            source = make_loop_nest(
                depth=rng.randint(1, 3),
                width=rng.randint(1, 4),
                routines=rng.randint(1, 3),
            )
            items.append(BatchItem(name=f"nest-{k:06d}", source=source))
    return items


# --------------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------------- #


def parse_shard(spec: str) -> tuple[int, int]:
    """``"i/N"`` → ``(i, N)``; 1-based, validated."""
    head, sep, tail = spec.partition("/")
    if not sep:
        raise ValueError(f"shard spec {spec!r} is not of the form i/N")
    try:
        index, total = int(head), int(tail)
    except ValueError:
        raise ValueError(f"shard spec {spec!r} is not of the form i/N") from None
    if total < 1 or not 1 <= index <= total:
        raise ValueError(
            f"shard spec {spec!r} out of range (need 1 <= i <= N)"
        )
    return index, total


def shard_items(
    items: Sequence[BatchItem], index: int, total: int
) -> list[BatchItem]:
    """Round-robin partition: shard *index* of *total* (1-based).

    Round-robin (not contiguous blocks) so every shard sees the same
    mix of item kinds — shard wall-clocks stay comparable and no shard
    is accidentally starved of library items.
    """
    return list(items[index - 1 :: total])


# --------------------------------------------------------------------------- #
# rollup
# --------------------------------------------------------------------------- #

_SUM_TOP = ("files", "errors", "loops", "parallel_loops", "jobs")
_SUM_DICTS = ("timings", "cache", "resilience", "audit", "symbolic", "verdicts")


def merge_rollups(payloads: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-shard ``--stats-json`` payloads into one scoreboard.

    Counters sum (``peak_gar_list`` maxes), verdict histograms add,
    wall-clock reports both the fleet total and the critical-path max.
    Shards carrying conflicting campaign provenance (different seed or
    generator version) are refused: a scoreboard must describe exactly
    one reproducible corpus.
    """
    if not payloads:
        raise ValueError("nothing to merge")
    out: dict[str, Any] = {"shards": len(payloads)}
    for key in _SUM_TOP:
        out[key] = sum(int(p.get(key, 0)) for p in payloads)
    for key in _SUM_DICTS:
        merged: dict[str, float] = {}
        for p in payloads:
            for k, v in p.get(key, {}).items():
                merged[k] = merged.get(k, 0) + v
        out[key] = merged
    peak = max(
        int(p.get("stats", {}).get("peak_gar_list", 0)) for p in payloads
    )
    stats: dict[str, int] = {}
    for p in payloads:
        for k, v in p.get("stats", {}).items():
            stats[k] = stats.get(k, 0) + int(v)
    stats["peak_gar_list"] = peak
    out["stats"] = stats
    out["wall_seconds"] = {
        "total": sum(float(p.get("wall_seconds", 0.0)) for p in payloads),
        "max": max(float(p.get("wall_seconds", 0.0)) for p in payloads),
    }
    hits = out["cache"].get("hits", 0)
    misses = out["cache"].get("misses", 0)
    out["cache"]["hit_rate"] = (
        round(hits / (hits + misses), 4) if hits + misses else 0.0
    )
    out["cache_backends"] = sorted(
        {p.get("cache_backend", "memory") for p in payloads}
    )
    sched: dict[str, Any] = {"modes": sorted(
        {p.get("sched", {}).get("mode", "arbitrary") for p in payloads}
    )}
    for k in ("edges", "gated_items", "cyclic_items", "opaque_items",
              "topo_hits"):
        sched[k] = sum(int(p.get("sched", {}).get(k, 0)) for p in payloads)
    out["sched"] = sched

    campaigns = [p.get("campaign") or {} for p in payloads]
    tagged = [c for c in campaigns if c]
    if tagged:
        identity = {
            (c.get("seed"), c.get("generator_version"), c.get("count"))
            for c in tagged
        }
        if len(identity) > 1:
            raise ValueError(
                f"refusing to merge shards from different campaigns: {identity}"
            )
        seed, version, count = next(iter(identity))
        out["campaign"] = {
            "seed": seed,
            "generator_version": version,
            "count": count,
            "shards": sorted(c.get("shard", "1/1") for c in tagged),
        }
    return out


def load_rollup(paths: Sequence[str]) -> dict[str, Any]:
    """Read per-shard stats files and merge them."""
    payloads = []
    for path in paths:
        with open(path) as fh:
            payloads.append(json.load(fh))
    return merge_rollups(payloads)


def format_scoreboard(rollup: dict[str, Any]) -> str:
    """Human-readable scoreboard for one merged campaign."""
    lines = []
    camp = rollup.get("campaign", {})
    if camp:
        lines.append(
            f"campaign: seed={camp['seed']} "
            f"generator=v{camp['generator_version']} count={camp['count']} "
            f"shards={','.join(camp.get('shards', []))}"
        )
    lines.append(
        f"{rollup['shards']} shard(s): {rollup['files']} file(s), "
        f"{rollup['errors']} error(s), {rollup['loops']} loop(s) "
        f"({rollup['parallel_loops']} parallel)"
    )
    verdicts = rollup.get("verdicts", {})
    if verdicts:
        hist = ", ".join(
            f"{k}={int(v)}" for k, v in sorted(verdicts.items())
        )
        lines.append(f"verdicts: {hist}")
    cache = rollup.get("cache", {})
    lines.append(
        f"cache[{'/'.join(rollup.get('cache_backends', []))}]: "
        f"{int(cache.get('hits', 0))} hit(s), "
        f"{int(cache.get('misses', 0))} miss(es), "
        f"hit rate {cache.get('hit_rate', 0.0):.1%}"
    )
    sched = rollup.get("sched", {})
    lines.append(
        f"sched[{'/'.join(sched.get('modes', []))}]: "
        f"{sched.get('edges', 0)} edge(s), "
        f"{sched.get('gated_items', 0)} gated, "
        f"{sched.get('topo_hits', 0)} topo hit(s)"
    )
    wall = rollup.get("wall_seconds", {})
    lines.append(
        f"wall: {wall.get('total', 0.0):.2f}s total, "
        f"{wall.get('max', 0.0):.2f}s critical path"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def build_arg_parser() -> argparse.ArgumentParser:
    from .. import __version__
    from .backends import BACKEND_KINDS
    from .scheduler import SCHEDULE_MODES

    parser = argparse.ArgumentParser(
        prog="panorama-campaign",
        description=(
            "Seeded mass-analysis campaigns: generate a deterministic "
            "corpus, run one shard of it, or merge per-shard stats into "
            "a scoreboard."
        ),
    )
    parser.add_argument(
        "--count", type=int, default=100, metavar="N",
        help="corpus size before sharding (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="generator seed; recorded in the stats rollup (default 0)",
    )
    parser.add_argument(
        "--library-size", type=int, metavar="N",
        help="routine-pool size (default: scaled from --count)",
    )
    parser.add_argument(
        "--shard", metavar="i/N",
        help="run only shard i of N (1-based round-robin partition)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="durable summary-cache directory (share it across shards)",
    )
    parser.add_argument(
        "--cache-backend", choices=list(BACKEND_KINDS),
        help="durable-tier implementation (default: $PANORAMA_CACHE_BACKEND"
        " or disk)",
    )
    parser.add_argument(
        "--schedule", choices=list(SCHEDULE_MODES), default="auto",
        help="dispatch order: topology-aware, arbitrary, or auto",
    )
    parser.add_argument(
        "--no-machine", action="store_true",
        help="skip cost/speedup estimation",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write this shard's telemetry (feed the files to --rollup)",
    )
    parser.add_argument(
        "--ledger", metavar="PATH",
        help="journal shard progress to this append-only JSONL ledger "
        "(one record per item transition; feed it to --resume)",
    )
    parser.add_argument(
        "--resume", metavar="LEDGER",
        help="resume an interrupted shard from its ledger: completed "
        "items are served from the journal, the rest re-dispatched; "
        "refuses a ledger from a different campaign/shard",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, give in-flight items this long to "
        "finish before abandoning them (default 10; exit code 5)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the generated item names and exit (no analysis)",
    )
    parser.add_argument(
        "--rollup", metavar="OUT", nargs="?", const="-",
        help="merge per-shard stats files (positionals) into OUT "
        "('-' or omitted value: stdout only)",
    )
    parser.add_argument(
        "stats_files", nargs="*", metavar="STATS.JSON",
        help="per-shard stats files to merge (with --rollup)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.rollup is not None:
        if not args.stats_files:
            print(
                "panorama-campaign: --rollup needs per-shard stats files",
                file=sys.stderr,
            )
            return 2
        try:
            rollup = load_rollup(args.stats_files)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"panorama-campaign: rollup failed: {exc}", file=sys.stderr)
            return 2
        if args.rollup != "-":
            with open(args.rollup, "w") as fh:
                json.dump(rollup, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(format_scoreboard(rollup))
        return 0

    try:
        corpus = generate_campaign(
            args.count, seed=args.seed, library_size=args.library_size
        )
    except ValueError as exc:
        print(f"panorama-campaign: {exc}", file=sys.stderr)
        return 2
    shard_spec = args.shard or "1/1"
    try:
        index, total = parse_shard(shard_spec)
    except ValueError as exc:
        print(f"panorama-campaign: {exc}", file=sys.stderr)
        return 2
    items = shard_items(corpus, index, total)

    if args.list:
        for item in items:
            print(item.name)
        return 0

    from ..dataflow import AnalysisOptions
    from ..errors import EXIT_INTERRUPTED
    from .batch import BatchEngine
    from .cli import install_drain_handlers, prepare_ledger
    from .ledger import run_identity

    options = AnalysisOptions()
    identity = run_identity(
        "campaign",
        items,
        options,
        machine=not args.no_machine,
        campaign={
            "seed": args.seed,
            "generator_version": GENERATOR_VERSION,
            "count": args.count,
            "shard": shard_spec,
        },
    )
    try:
        writer, replay = prepare_ledger(
            args.ledger, args.resume, identity, "panorama-campaign"
        )
    except SystemExit as exc:
        return int(exc.code or 0)
    engine = BatchEngine(
        options,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        run_machine_model=not args.no_machine,
        cache_backend=args.cache_backend,
        schedule=args.schedule,
        ledger=writer,
        resume=replay,
        drain_timeout=args.drain_timeout,
    )
    restore_signals = install_drain_handlers(engine)
    try:
        report = engine.run(items)
    finally:
        restore_signals()
        if writer is not None:
            writer.close()
    tele = report.telemetry
    tele.campaign = {
        "seed": args.seed,
        "generator_version": GENERATOR_VERSION,
        "count": args.count,
        "shard": shard_spec,
        "items": len(items),
        "library_size": args.library_size,
    }
    if args.stats_json:
        tele.write_json(args.stats_json)
    print(
        f"shard {shard_spec}: {tele.summary_line()}"
    )
    for res in report.results:
        if not res.ok:
            print(
                f"--- {res.name}: ERROR ({res.error_kind}) ---\n{res.error}",
                file=sys.stderr,
            )
    code = report.exit_code()
    if code == EXIT_INTERRUPTED:
        ledger_path = args.ledger or args.resume
        hint = (
            f" (resume with --resume {ledger_path})" if ledger_path else ""
        )
        print(
            f"panorama-campaign: shard {shard_spec} interrupted; finalized "
            f"progress is flushed and consistent{hint} (exit 5)",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
