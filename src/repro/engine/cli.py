"""``panorama-batch``: bulk analysis with workers and a persistent cache.

Examples::

    panorama-batch a.f b.f c.f --jobs 4 --cache-dir ~/.panorama-cache
    panorama-batch --kernels --jobs 4 --stats-json stats.json
    panorama-batch --kernels --json          # full machine-readable output
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import __version__
from ..dataflow import AnalysisOptions
from ..driver.report import format_table, yes_no
from .batch import BatchEngine, items_from_kernel_registry, items_from_paths


def build_arg_parser() -> argparse.ArgumentParser:
    """The panorama-batch CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="panorama-batch",
        description=(
            "Batch front end to the Panorama analyzer: fan Fortran sources "
            "across worker processes with a persistent, content-addressed "
            "summary cache."
        ),
    )
    parser.add_argument(
        "sources", nargs="*", help="Fortran source files to analyze"
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also analyze the built-in Perfect-benchmark kernel suite",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persistent summary cache directory (shared by workers)",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write aggregated telemetry (timings, stats, cache counters)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit all results as JSON on stdout instead of tables",
    )
    parser.add_argument(
        "--ablate",
        choices=["T1", "T2", "T3"],
        action="append",
        default=[],
        help="disable a technique (repeatable): T1 symbolic, "
        "T2 IF conditions, T3 interprocedural",
    )
    parser.add_argument(
        "--no-fm",
        action="store_true",
        help="disable the Fourier-Motzkin fallback prover",
    )
    parser.add_argument(
        "--no-machine",
        action="store_true",
        help="skip cost/speedup estimation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_arg_parser().parse_args(argv)
    try:
        items = items_from_paths(args.sources)
    except OSError as exc:
        print(f"panorama-batch: cannot read source: {exc}", file=sys.stderr)
        return 2
    if args.kernels:
        items.extend(items_from_kernel_registry())
    if not items:
        print("panorama-batch: no sources (pass files or --kernels)",
              file=sys.stderr)
        return 2

    options = AnalysisOptions(
        symbolic="T1" not in args.ablate,
        if_conditions="T2" not in args.ablate,
        interprocedural="T3" not in args.ablate,
        use_fm=not args.no_fm,
    )
    engine = BatchEngine(
        options,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        run_machine_model=not args.no_machine,
    )
    report = engine.run(items)

    if args.json:
        print(
            json.dumps(
                {
                    "results": [
                        res.payload if res.ok else {"name": res.name,
                                                    "error": res.error}
                        for res in report.results
                    ],
                    "telemetry": report.telemetry.as_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for res in report.results:
            if not res.ok:
                print(f"--- {res.name}: ERROR ---\n{res.error}",
                      file=sys.stderr)
                continue
            rows = [
                [
                    row["loop"],
                    row["var"],
                    row["status"],
                    yes_no(row["used_dataflow"]),
                    ", ".join(row["privatized"]),
                    f"{row['speedup']:.1f}x" if row["parallel"] else "-",
                ]
                for row in res.rows()
            ]
            print(
                format_table(
                    ["loop", "index", "status", "dataflow", "privatized",
                     "est. speedup"],
                    rows,
                    title=f"Panorama verdicts ({res.name})",
                )
            )
            print()
        print(report.telemetry.summary_line())

    if args.stats_json:
        report.telemetry.write_json(args.stats_json)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
