"""``panorama-batch``: bulk analysis with workers and a persistent cache.

Examples::

    panorama-batch a.f b.f c.f --jobs 4 --cache-dir ~/.panorama-cache
    panorama-batch --kernels --jobs 4 --stats-json stats.json
    panorama-batch --kernels --json          # full machine-readable output
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from types import SimpleNamespace

from .. import __version__
from ..dataflow import AnalysisOptions
from ..driver.report import format_stats, format_table, yes_no
from ..errors import EXIT_INTERRUPTED, EXIT_USAGE
from ..resilience import faults
from ..resilience.faults import ENV_VAR
from . import ledger as ledger_mod
from .batch import BatchEngine, items_from_kernel_registry, items_from_paths


def build_arg_parser() -> argparse.ArgumentParser:
    """The panorama-batch CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="panorama-batch",
        description=(
            "Batch front end to the Panorama analyzer: fan Fortran sources "
            "across worker processes with a persistent, content-addressed "
            "summary cache."
        ),
    )
    parser.add_argument(
        "sources", nargs="*", help="Fortran source files to analyze"
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also analyze the built-in Perfect-benchmark kernel suite",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1: in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persistent summary cache directory (shared by workers)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=["disk", "shared"],
        help="durable cache tier: pickle files (disk) or the "
        "multi-process SQLite tier (shared); default "
        "$PANORAMA_CACHE_BACKEND or disk",
    )
    parser.add_argument(
        "--schedule",
        choices=["auto", "topo", "arbitrary"],
        default="auto",
        help="dispatch order: topo analyzes callee-providing items "
        "first so callers hit warm summaries (default auto)",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write aggregated telemetry (timings, stats, cache counters)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit all results as JSON on stdout instead of tables",
    )
    parser.add_argument(
        "--ablate",
        choices=["T1", "T2", "T3"],
        action="append",
        default=[],
        help="disable a technique (repeatable): T1 symbolic, "
        "T2 IF conditions, T3 interprocedural",
    )
    parser.add_argument(
        "--no-fm",
        action="store_true",
        help="disable the Fourier-Motzkin fallback prover",
    )
    parser.add_argument(
        "--no-frontier",
        action="store_true",
        help="disable the frontier pass (array-content facts and "
        "scan/recurrence recognition; docs/frontier.md)",
    )
    parser.add_argument(
        "--no-machine",
        action="store_true",
        help="skip cost/speedup estimation",
    )
    resilience = parser.add_argument_group(
        "resilience (docs/robustness.md)"
    )
    resilience.add_argument(
        "--timeout-per-item",
        type=float,
        metavar="SECONDS",
        help="declare an in-flight item hung after this long "
        "(pool mode only; default: wait forever)",
    )
    resilience.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry a failed item up to N times before quarantining it "
        "(default 2; source errors are never retried)",
    )
    resilience.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="per-file analysis deadline; exhaustion degrades loops to "
        "conservative 'unknown (budget)' verdicts instead of failing",
    )
    resilience.add_argument(
        "--budget-steps",
        type=int,
        metavar="N",
        help="per-file symbolic step budget (deterministic analogue of "
        "--budget-ms)",
    )
    resilience.add_argument(
        "--inject-faults",
        metavar="PLAN",
        help="fault plan, e.g. 'worker.crash:MDG@1;cache.corrupt' "
        f"(equivalent to setting ${ENV_VAR}; chaos testing only)",
    )
    resilience.add_argument(
        "--ledger",
        metavar="PATH",
        help="journal run progress to this append-only JSONL ledger "
        "(one record per item transition; feed it to --resume)",
    )
    resilience.add_argument(
        "--resume",
        metavar="LEDGER",
        help="resume an interrupted run from its ledger: completed "
        "items are served from the journal, in-flight and failed ones "
        "re-dispatched; refuses a ledger written for a different run",
    )
    resilience.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, give in-flight items this long to "
        "finish before abandoning them (default 10; exit code 5)",
    )
    audit = parser.add_argument_group("auditing (docs/auditing.md)")
    audit.add_argument(
        "--audit",
        action="store_true",
        help="run the static race auditor over every parallel verdict in "
        "every item (PAN1xx/PAN2xx/PAN3xx diagnostics)",
    )
    audit.add_argument(
        "--sarif",
        metavar="PATH",
        help="write all audit diagnostics as one SARIF 2.1.0 log "
        "(implies --audit)",
    )
    audit.add_argument(
        "--strict-audit",
        action="store_true",
        help="exit 4 when the audit finds a confirmed disagreement or an "
        "internal-consistency violation (implies --audit)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    return parser


def prepare_ledger(ledger_path, resume_path, identity, prog):
    """``(writer, replay)`` for the --ledger/--resume flags.

    Raises ``SystemExit(EXIT_USAGE)`` after printing the reason when the
    flags conflict, the ledger cannot be opened, or — the crucial
    refusal — its identity header describes a different run.
    """
    if resume_path:
        if ledger_path and os.path.abspath(ledger_path) != os.path.abspath(
            resume_path
        ):
            print(
                f"{prog}: --ledger and --resume must name the same file",
                file=sys.stderr,
            )
            raise SystemExit(EXIT_USAGE)
        try:
            replay = ledger_mod.replay(resume_path)
            ledger_mod.verify_identity(replay.header, identity)
        except OSError as exc:
            print(f"{prog}: cannot resume: {exc}", file=sys.stderr)
            raise SystemExit(EXIT_USAGE)
        except ledger_mod.LedgerMismatch as exc:
            print(f"{prog}: refusing to resume: {exc}", file=sys.stderr)
            raise SystemExit(EXIT_USAGE)
        return (
            ledger_mod.LedgerWriter(resume_path, identity, resume=True),
            replay,
        )
    if ledger_path:
        try:
            return ledger_mod.LedgerWriter(ledger_path, identity), None
        except OSError as exc:
            print(f"{prog}: cannot open ledger: {exc}", file=sys.stderr)
            raise SystemExit(EXIT_USAGE)
    return None, None


def install_drain_handlers(engine: BatchEngine):
    """SIGTERM/SIGINT → graceful drain; returns a restore callback.

    The handler only sets an event the run loop polls, so it is
    async-signal-safe; in-flight items finish inside the engine's
    drain timeout and the run exits interrupted-but-consistent.
    """
    previous = {}

    def _drain(signum, frame):
        engine.request_drain()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except (ValueError, OSError):  # non-main thread, or unsupported
            pass

    def restore():
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass

    return restore


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_arg_parser().parse_args(argv)
    try:
        items = items_from_paths(args.sources)
    except OSError as exc:
        print(f"panorama-batch: cannot read source: {exc}", file=sys.stderr)
        return 2
    if args.kernels:
        items.extend(items_from_kernel_registry())
    if not items:
        print("panorama-batch: no sources (pass files or --kernels)",
              file=sys.stderr)
        return 2

    if args.inject_faults:
        # the env var is the transport: pool workers inherit it
        os.environ[ENV_VAR] = args.inject_faults
        faults.reset()

    extra = {"frontier": False} if args.no_frontier else {}
    options = AnalysisOptions(
        symbolic="T1" not in args.ablate,
        if_conditions="T2" not in args.ablate,
        interprocedural="T3" not in args.ablate,
        use_fm=not args.no_fm,
        budget_ms=args.budget_ms,
        budget_steps=args.budget_steps,
        **extra,
    )
    run_audit = bool(args.audit or args.sarif or args.strict_audit)
    identity = ledger_mod.run_identity(
        "batch", items, options, audit=run_audit, machine=not args.no_machine
    )
    try:
        writer, replay = prepare_ledger(
            args.ledger, args.resume, identity, "panorama-batch"
        )
    except SystemExit as exc:
        return int(exc.code or 0)
    engine = BatchEngine(
        options,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        run_machine_model=not args.no_machine,
        timeout_per_item=args.timeout_per_item,
        max_attempts=max(1, args.retries + 1),
        audit=run_audit,
        cache_backend=args.cache_backend,
        schedule=args.schedule,
        ledger=writer,
        resume=replay,
        drain_timeout=args.drain_timeout,
    )
    restore_signals = install_drain_handlers(engine)
    try:
        report = engine.run(items)
    finally:
        restore_signals()
        if writer is not None:
            writer.close()

    if args.json:
        print(
            json.dumps(
                {
                    "results": [
                        res.payload
                        if res.ok
                        else {
                            "name": res.name,
                            "error": res.error,
                            "error_kind": res.error_kind,
                            "attempts": res.attempts,
                            "quarantined": res.quarantined,
                        }
                        for res in report.results
                    ],
                    "telemetry": report.telemetry.as_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for res in report.results:
            if not res.ok:
                tag = res.error_kind or "error"
                flag = " [quarantined]" if res.quarantined else ""
                print(
                    f"--- {res.name}: ERROR ({tag}, "
                    f"{res.attempts} attempt(s)){flag} ---\n{res.error}",
                    file=sys.stderr,
                )
                continue
            rows = [
                [
                    row["loop"],
                    row["var"],
                    row["status"],
                    yes_no(row["used_dataflow"]),
                    ", ".join(row["privatized"]),
                    f"{row['speedup']:.1f}x" if row["parallel"] else "-",
                ]
                for row in res.rows()
            ]
            print(
                format_table(
                    ["loop", "index", "status", "dataflow", "privatized",
                     "est. speedup"],
                    rows,
                    title=f"Panorama verdicts ({res.name})",
                )
            )
            print()
        print(report.telemetry.summary_line())
        tele = report.telemetry
        print(
            format_stats(
                SimpleNamespace(**tele.stats, symbolic=tele.symbolic),
                cache_backend=tele.cache_backend,
            )
        )
        if run_audit:
            a = report.telemetry.audit
            print(
                f"audit: {a['loops_audited']} loop(s), "
                f"{a['pairs_checked']} pair(s); "
                f"{a['confirmed']} confirmed, {a['guarded']} guarded, "
                f"{a['undecided']} undecided, "
                f"{a['oracle_conflicts']} oracle conflict(s), "
                f"{a['lint']} lint, {a['sanitizer']} sanitizer"
            )
            from ..diagnostics import render_text

            diags = report.audit_diagnostics()
            if diags:
                print(render_text(diags))

    if run_audit and args.sarif:
        from ..diagnostics import write_sarif

        write_sarif(report.audit_diagnostics(), args.sarif)

    if args.stats_json:
        report.telemetry.write_json(args.stats_json)
    code = report.exit_code()
    if code in (0, 3) and args.strict_audit and report.audit_errors():
        # a soundness finding trumps the degraded-verdicts code
        code = 4
        print(
            "panorama-batch: strict audit failed: "
            f"{len(report.audit_errors())} error-severity diagnostic(s) "
            "(exit 4)",
            file=sys.stderr,
        )
    elif code == 3:
        print(
            "panorama-batch: completed with degradations "
            "(see docs/robustness.md; exit 3)",
            file=sys.stderr,
        )
    elif code == EXIT_INTERRUPTED:
        ledger_path = args.ledger or args.resume
        hint = (
            f" (resume with --resume {ledger_path})" if ledger_path else ""
        )
        print(
            "panorama-batch: interrupted; finalized progress is flushed "
            f"and consistent{hint} (exit 5)",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
