"""Call-graph-topology-aware batch scheduling.

Batch items are not independent: the campaign corpus (and any real
project sweep) contains *library* items — bare routines analyzed on
their own — and *app* items whose drivers call those same routines.
Because summary fingerprints are content-addressed
(:func:`~repro.engine.cache.fingerprint_program`), an identical routine
carries the identical fingerprint in every item that embeds it, so the
first item to analyze it warms the cache for all the others.

This module plans the order that makes that reuse systematic: analyze
*providers* before *consumers*, so callers hit warm summaries instead
of recomputing them.  The inter-item edge is deliberately asymmetric:

* ``provides(X)`` — fingerprints of X's units with **no in-item
  caller**: X analyzes them standalone, so their summaries land in the
  cache at full fidelity;
* ``consumes(Y)`` — fingerprints of Y's units that **have an in-item
  caller**: Y would otherwise recompute them on the way to its drivers.

``X → Y`` iff ``provides(X) ∩ consumes(Y) ≠ ∅``.  Symmetric overlap
(two items embedding the same library) creates no edge — only a
provider/consumer relationship does — which keeps the graph a DAG for
caller-heavy corpora instead of collapsing into one giant clique.
Genuine cycles are still possible in adversarial corpora, so the
planner condenses strongly connected components first (arbitrary, but
stable, order inside an SCC) and is therefore cycle-safe by
construction.

Scheduling is a pure perf lever: analysis is deterministic given
(source, options) and cached summaries are bit-identical to recomputed
ones, so the verdicts of a topology-scheduled run are identical to an
arbitrary-order run (property-tested in
``tests/property/test_prop_schedule.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..dataflow.context import AnalysisOptions
from ..fortran.callgraph import build_call_graph
from ..fortran.parser import parse_program
from ..fortran.semantics import analyze
from .cache import fingerprint_program

#: recognized --schedule spellings
SCHEDULE_MODES = ("auto", "topo", "arbitrary")


@dataclass
class ItemTopology:
    """Provider/consumer fingerprints of one batch item."""

    #: fingerprints of units with no in-item caller (analyzed standalone)
    provides: frozenset[str] = frozenset()
    #: fingerprints of units some other in-item unit calls
    consumes: frozenset[str] = frozenset()
    #: True when the item could not be parsed/fingerprinted (isolated)
    opaque: bool = False


@dataclass
class SchedulePlan:
    """A dispatch order plus the dependency structure behind it."""

    #: item indices in dispatch order (covers every item exactly once)
    order: list[int]
    #: per-item indices that should finalize first (cross-SCC only, so
    #: gating on them can never deadlock)
    deps: dict[int, set[int]] = field(default_factory=dict)
    #: "topo" or "arbitrary"
    mode: str = "arbitrary"
    #: inter-item provider→consumer edges discovered
    edges: int = 0
    #: items living inside multi-item SCCs (ordered arbitrarily there)
    cyclic_items: int = 0
    #: items that could not be fingerprinted (scheduled, ungated)
    opaque_items: int = 0

    @property
    def gated_items(self) -> int:
        """Items that wait on at least one provider."""
        return sum(1 for d in self.deps.values() if d)

    def as_dict(self) -> dict[str, int | str]:
        return {
            "mode": self.mode,
            "edges": self.edges,
            "gated_items": self.gated_items,
            "cyclic_items": self.cyclic_items,
            "opaque_items": self.opaque_items,
        }


def item_topology(
    source: str, options: AnalysisOptions, sizes: Mapping[str, int] | None = None
) -> ItemTopology:
    """Fingerprint one item's units and split provider/consumer sets.

    Runs only the cheap front of the pipeline (parse, symbol tables,
    call graph) — no dataflow analysis.  Unparseable sources come back
    ``opaque`` and are scheduled without constraints; the analysis
    proper will produce the real (typed) error for them.
    """
    del sizes  # problem sizes don't enter fingerprints
    try:
        analyzed = analyze(parse_program(source))
        call_graph = build_call_graph(analyzed)
        fps = fingerprint_program(analyzed.program, call_graph, options)
    except Exception:
        return ItemTopology(opaque=True)
    called: set[str] = set()
    for name in fps:
        called |= call_graph.calls(name)
    provides = frozenset(fps[n] for n in fps if n not in called)
    consumes = frozenset(fps[n] for n in fps if n in called)
    return ItemTopology(provides=provides, consumes=consumes)


def resolve_schedule_mode(
    mode: str,
    item_count: int,
    jobs: int,
    cache_dir: Optional[str],
) -> str:
    """Collapse ``auto`` to a concrete mode.

    Topology ordering only pays when warm summaries can actually flow
    between items: in-process runs share the memory tier, pool runs
    need a durable tier (``cache_dir``).  A pool with no cache directory
    has nothing to warm, so ordering would be pure overhead.
    """
    if mode not in SCHEDULE_MODES:
        raise ValueError(
            f"unknown schedule mode {mode!r} (expected one of {SCHEDULE_MODES})"
        )
    if mode != "auto":
        return mode
    if item_count < 2:
        return "arbitrary"
    if jobs <= 1 or cache_dir is not None:
        return "topo"
    return "arbitrary"


def plan_schedule(
    items: Sequence, options: AnalysisOptions, mode: str = "topo"
) -> SchedulePlan:
    """Plan the dispatch order for *items* (objects with ``.source``).

    ``arbitrary`` preserves input order with no gating.  ``topo``
    computes provider→consumer edges, condenses SCCs, and emits a
    stable topological order: ties (and members within an SCC) keep
    their input order, so the plan is deterministic for a given corpus.
    """
    n = len(items)
    if mode == "arbitrary" or n < 2:
        return SchedulePlan(order=list(range(n)), deps={i: set() for i in range(n)})

    topos = [item_topology(item.source, options) for item in items]

    # invert provides: fingerprint -> providing items
    providers: dict[str, list[int]] = {}
    for i, topo in enumerate(topos):
        for fp in topo.provides:
            providers.setdefault(fp, []).append(i)

    succ: dict[int, set[int]] = {i: set() for i in range(n)}
    pred: dict[int, set[int]] = {i: set() for i in range(n)}
    edges = 0
    for i, topo in enumerate(topos):
        for fp in topo.consumes:
            for j in providers.get(fp, ()):
                if j != i and i not in succ[j]:
                    succ[j].add(i)
                    pred[i].add(j)
                    edges += 1

    # Tarjan SCC condensation (iterative: corpora reach 10^4+ items)
    scc_of = _condense(succ, n)

    # stable topological sort of the condensation, tie-broken by the
    # smallest original index in each SCC so the plan is deterministic
    scc_members: dict[int, list[int]] = {}
    for i in range(n):
        scc_members.setdefault(scc_of[i], []).append(i)
    scc_pred: dict[int, set[int]] = {c: set() for c in scc_members}
    for j, outs in succ.items():
        for i in outs:
            if scc_of[j] != scc_of[i]:
                scc_pred[scc_of[i]].add(scc_of[j])
    indegree = {c: len(p) for c, p in scc_pred.items()}
    heap = [
        (min(scc_members[c]), c) for c, d in indegree.items() if d == 0
    ]
    heapq.heapify(heap)
    scc_succ: dict[int, set[int]] = {c: set() for c in scc_members}
    for j, outs in succ.items():
        for i in outs:
            if scc_of[j] != scc_of[i]:
                scc_succ[scc_of[j]].add(scc_of[i])
    order: list[int] = []
    while heap:
        _, c = heapq.heappop(heap)
        order.extend(sorted(scc_members[c]))
        for d in scc_succ[c]:
            indegree[d] -= 1
            if indegree[d] == 0:
                heapq.heappush(heap, (min(scc_members[d]), d))

    deps = {
        i: {j for j in pred[i] if scc_of[j] != scc_of[i]} for i in range(n)
    }
    return SchedulePlan(
        order=order,
        deps=deps,
        mode="topo",
        edges=edges,
        cyclic_items=sum(
            len(m) for m in scc_members.values() if len(m) > 1
        ),
        opaque_items=sum(1 for t in topos if t.opaque),
    )


def _condense(succ: dict[int, set[int]], n: int) -> list[int]:
    """Iterative Tarjan: node index -> SCC id."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    scc_of = [-1] * n
    counter = 0
    sccs = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index_of[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            outs = sorted(succ[v])
            for k in range(pi, len(outs)):
                w = outs[k]
                if index_of[w] == -1:
                    work[-1] = (v, k + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc_of[w] = sccs
                    if w == v:
                        break
                sccs += 1
    return scc_of
