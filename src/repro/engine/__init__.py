"""The batch analysis engine: serving-layer machinery above the pipeline.

The paper's Figure 4 argues the analysis "costs little beyond parsing";
this package makes repeated and bulk analysis cheap in practice:

* :mod:`repro.engine.cache` — content-addressed, two-tier (memory LRU +
  durable backend) cache of per-routine summaries, with
  callee-transitive fingerprints for exact interprocedural invalidation;
* :mod:`repro.engine.backends` — the pluggable durable tier:
  pickle-directory (``disk``) and multi-process SQLite (``shared``);
* :mod:`repro.engine.scheduler` — call-graph-topology-aware dispatch
  planning (providers before consumers, cycle-safe);
* :mod:`repro.engine.batch` — :class:`BatchEngine`, fanning many sources
  over a process pool that shares the durable cache tier;
* :mod:`repro.engine.incremental` — :class:`IncrementalEngine`,
  re-summarizing only routines an edit (transitively) touched;
* :mod:`repro.engine.campaign` — seeded mass corpora, ``--shard i/N``
  partitioning, and stats rollups (``panorama-campaign``);
* :mod:`repro.engine.telemetry` — counters, roll-ups, and the JSON
  serializers shared with ``panorama --json``;
* :mod:`repro.engine.cli` — the ``panorama-batch`` entry point.

The batch pool is supervised (per-item timeouts, retries with seeded
backoff, pool rebuild on worker crash, quarantine): see
``docs/robustness.md`` for the full degradation ladder.
"""

from .backends import CacheBackend, DiskBackend, SharedSQLiteBackend, make_backend
from .batch import (
    BatchEngine,
    BatchItem,
    BatchItemResult,
    BatchReport,
    items_from_kernel_registry,
    items_from_paths,
)
from .cache import (
    CACHE_FORMAT_VERSION,
    DISK_MAGIC,
    CacheStats,
    CachingHooks,
    RoutineCacheEntry,
    SummaryCache,
    fingerprint_program,
    options_key,
    unit_source_hash,
)
from .campaign import (
    GENERATOR_VERSION,
    generate_campaign,
    merge_rollups,
    parse_shard,
    shard_items,
)
from .incremental import (
    IncrementalEngine,
    IncrementalReport,
    IncrementalResult,
    diff_revisions,
)
from .scheduler import SchedulePlan, plan_schedule, resolve_schedule_mode
from .telemetry import (
    EngineTelemetry,
    analysis_stats_dict,
    loop_report_row,
    result_to_dict,
    timings_dict,
)

__all__ = [
    "BatchEngine",
    "BatchItem",
    "BatchItemResult",
    "BatchReport",
    "CACHE_FORMAT_VERSION",
    "CacheBackend",
    "CacheStats",
    "CachingHooks",
    "DISK_MAGIC",
    "DiskBackend",
    "EngineTelemetry",
    "GENERATOR_VERSION",
    "IncrementalEngine",
    "IncrementalReport",
    "IncrementalResult",
    "RoutineCacheEntry",
    "SchedulePlan",
    "SharedSQLiteBackend",
    "SummaryCache",
    "analysis_stats_dict",
    "diff_revisions",
    "fingerprint_program",
    "generate_campaign",
    "items_from_kernel_registry",
    "items_from_paths",
    "loop_report_row",
    "make_backend",
    "merge_rollups",
    "options_key",
    "parse_shard",
    "plan_schedule",
    "resolve_schedule_mode",
    "result_to_dict",
    "shard_items",
    "timings_dict",
    "unit_source_hash",
]
