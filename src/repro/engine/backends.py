"""Pluggable persistent tiers behind :class:`~repro.engine.cache.SummaryCache`.

The memory LRU always lives in ``SummaryCache``; what sits *behind* it is
a :class:`CacheBackend` — the durable, cross-process tier.  Two are
shipped:

* :class:`DiskBackend` — the v3 pickle-per-fingerprint directory layout
  (``<dir>/ab/<fingerprint>.pkl``, checksummed container, atomic-rename
  writes).  This is byte-compatible with every cache directory written
  before the backend split: fingerprints, the container magic, and
  :data:`~repro.engine.cache.CACHE_FORMAT_VERSION` are unchanged, so
  existing caches stay valid.
* :class:`SharedSQLiteBackend` — one SQLite database in WAL mode that N
  concurrent engine *processes* (not just one engine's workers) read and
  write.  Rows are self-verifying (SHA-256 of the payload stored beside
  it); corrupt rows are moved into a ``quarantine`` table, never
  re-trusted; writer contention is retried with backoff and surfaced as
  the ``contention_retries`` counter.

Backends share the fingerprint keyspace: an entry computed under either
backend is the same ``(CACHE_FORMAT_VERSION, RoutineCacheEntry)`` pickle
under the same fingerprint, so switching backends never invalidates
summaries — only relocates them.

Selection: pass ``backend="disk"|"shared"`` (or an instance) to
``SummaryCache``/``BatchEngine``, use ``panorama-batch
--cache-backend``, or set :data:`ENV_BACKEND_VAR`
(``PANORAMA_CACHE_BACKEND``).  The default is ``disk``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from ..resilience import faults
from ..resilience.breaker import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache imports us)
    from .cache import CacheStats, RoutineCacheEntry

#: environment selector for the default backend kind
ENV_BACKEND_VAR = "PANORAMA_CACHE_BACKEND"

#: kinds make_backend accepts
BACKEND_KINDS = ("disk", "shared")

#: default bound on quarantined entries kept per backend (oldest-first
#: eviction beyond this — a corruption storm must not fill the disk)
QUARANTINE_CAP = 256


class _BreakerMixin:
    """Shared circuit-breaker plumbing for the durable tiers.

    Backends never raise into the analysis — they degrade per operation.
    The breaker adds fleet-level memory on top: consecutive failures trip
    it open, after which operations are short-circuited locally (a miss /
    a dropped store) until a seeded half-open probe succeeds.  Every
    transition is mirrored into :class:`CacheStats` *at event time* so
    per-worker stat deltas merge correctly across processes.
    """

    breaker: Optional[CircuitBreaker]
    stats: "CacheStats"

    def _breaker_allow(self) -> bool:
        if self.breaker is None or self.breaker.allow():
            return True
        self.stats.breaker_skipped += 1
        return False

    def _breaker_ok(self) -> None:
        if self.breaker is not None and self.breaker.record_success():
            self.stats.breaker_recoveries += 1

    def _breaker_fail(self) -> None:
        if self.breaker is not None and self.breaker.record_failure():
            self.stats.breaker_trips += 1


@runtime_checkable
class CacheBackend(Protocol):
    """The durable tier contract extracted from the old ``SummaryCache``.

    Implementations must be safe for concurrent use by independent
    processes: ``put`` of identical content under the same fingerprint
    must be idempotent, and a reader racing a writer must see either the
    old entry, the new entry, or a miss — never a torn read.  Corrupt
    stored entries are *quarantined* (counted, moved aside, reported as
    a miss), never returned.
    """

    #: short human name shown in telemetry (``cache_backend``)
    name: str

    def bind_stats(self, stats: "CacheStats") -> None:
        """Attach the counter sink all operations report into."""
        ...

    def get(self, fingerprint: str) -> Optional["RoutineCacheEntry"]:
        """The verified entry for *fingerprint*, or None on miss."""
        ...

    def put(self, entry: "RoutineCacheEntry") -> None:
        """Durably store *entry* under its fingerprint (overwrite OK)."""
        ...

    def contains(self, fingerprint: str) -> bool:
        """Cheap existence probe (no payload verification)."""
        ...

    def close(self) -> None:
        """Release handles (connections, fds); further use may reopen."""
        ...


def _verify_payload(
    payload: bytes, digest: bytes
) -> tuple[Optional[object], Optional[str]]:
    """Decode one self-verifying payload: ``(entry, None)`` on success,
    ``(None, reason)`` naming the quarantine tag otherwise."""
    from .cache import CACHE_FORMAT_VERSION, RoutineCacheEntry

    if hashlib.sha256(payload).digest() != digest:
        return None, "checksum"
    try:
        version, entry = pickle.loads(payload)
    except Exception:
        return None, "unpickle"
    if version != CACHE_FORMAT_VERSION or not isinstance(entry, RoutineCacheEntry):
        return None, "version"
    return entry, None


def _encode_entry(entry: "RoutineCacheEntry") -> tuple[bytes, bytes]:
    """``(payload, digest)`` of one entry in the shared pickle format."""
    from .cache import CACHE_FORMAT_VERSION

    payload = pickle.dumps((CACHE_FORMAT_VERSION, entry))
    return payload, hashlib.sha256(payload).digest()


class DiskBackend(_BreakerMixin):
    """Pickle-per-fingerprint directory tier (the original disk tier).

    Entries are sharded by the first two fingerprint characters
    (``<dir>/ab/ab…pkl``) and written via temp-file + atomic rename, so
    workers sharing the directory are safe and racing writers agree
    (content addressing makes their bytes identical).  Bad entries are
    moved to ``<dir>/quarantine/`` with a reason suffix; the quarantine
    directory is capped at *quarantine_cap* entries, evicting oldest
    first.
    """

    name = "disk"

    def __init__(
        self,
        cache_dir,
        stats: "CacheStats | None" = None,
        quarantine_cap: int = QUARANTINE_CAP,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        from .cache import CacheStats

        self.cache_dir = Path(cache_dir)
        self.stats = stats if stats is not None else CacheStats()
        self.quarantine_cap = max(1, quarantine_cap)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def bind_stats(self, stats: "CacheStats") -> None:
        self.stats = stats

    def path(self, fingerprint: str) -> Path:
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.pkl"

    def contains(self, fingerprint: str) -> bool:
        return self.path(fingerprint).exists()

    def close(self) -> None:  # directories hold no handles
        return None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad disk entry aside (``<dir>/quarantine/``) so it is
        never re-read, re-trusted, or silently overwritten evidence."""
        self.stats.disk_errors += 1
        self.stats.quarantined += 1
        try:
            qdir = self.cache_dir / "quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{path.name}.{reason}")
            self._evict_quarantine(qdir)
        except OSError:
            # even quarantining can fail (read-only dir): last resort is
            # deleting the bad entry so it cannot poison later reads
            try:
                path.unlink()
            except OSError:
                pass

    def _evict_quarantine(self, qdir: Path) -> None:
        """Hold the quarantine directory at the cap, oldest-first."""
        entries = sorted(
            (p for p in qdir.iterdir() if p.is_file()),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        while len(entries) > self.quarantine_cap:
            victim = entries.pop(0)
            try:
                victim.unlink()
                self.stats.quarantine_evicted += 1
            except OSError:
                pass

    def get(self, fingerprint: str) -> Optional["RoutineCacheEntry"]:
        from .cache import DISK_MAGIC, _DIGEST_LEN

        path = self.path(fingerprint)
        if not path.exists():
            return None
        if not self._breaker_allow():
            return None
        if faults.should_fire("cache.read"):
            raise OSError(f"injected fault: cache.read {fingerprint[:12]}")
        if faults.should_fire("cache.corrupt"):
            # simulate a torn write: clobber the container header in place
            # so the genuine corruption-detection path runs
            with path.open("r+b") as fh:
                fh.write(b"\x00" * len(DISK_MAGIC))
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.disk_errors += 1
            self._breaker_fail()
            return None
        if len(data) < len(DISK_MAGIC) + _DIGEST_LEN or not data.startswith(
            DISK_MAGIC
        ):
            self._quarantine(path, "badmagic")
            self._breaker_fail()
            return None
        digest = data[len(DISK_MAGIC) : len(DISK_MAGIC) + _DIGEST_LEN]
        payload = data[len(DISK_MAGIC) + _DIGEST_LEN :]
        entry, reason = _verify_payload(payload, digest)
        if entry is None:
            self._quarantine(path, reason or "corrupt")
            self._breaker_fail()
            return None
        self._breaker_ok()
        return entry

    def put(self, entry: "RoutineCacheEntry") -> None:
        from .cache import DISK_MAGIC

        if not self._breaker_allow():
            return  # open breaker: drop the store, cache stays an accelerator
        path = self.path(entry.fingerprint)
        try:
            payload, digest = _encode_entry(entry)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=entry.fingerprint[:8], suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(DISK_MAGIC)
                    fh.write(digest)
                    fh.write(payload)
                os.replace(tmp, path)  # atomic on POSIX: racing writers agree
            except BaseException:
                os.unlink(tmp)
                raise
            self._breaker_ok()
        except OSError:
            self.stats.disk_errors += 1
            self._breaker_fail()


class SharedSQLiteBackend(_BreakerMixin):
    """One WAL-mode SQLite database shared by N engine processes.

    WAL gives single-writer/many-reader concurrency without readers
    blocking; writes are single-row upserts, so writer lock windows are
    tiny.  A busy writer is retried :attr:`max_retries` times with
    linear backoff (each retry counted in ``contention_retries``); a
    write that still cannot land is dropped and counted as a
    ``disk_error`` — the cache is an accelerator, losing a store is
    always safe.

    Rows carry the same checksummed pickle the disk tier writes inside
    its container, verified on every read.  A row that fails
    verification is moved into the ``quarantine`` table (fingerprint,
    reason, payload) and deleted from ``summaries``, so it is never
    served again but remains inspectable.

    Connections are opened lazily and re-opened after ``fork`` — a
    SQLite handle must never cross a process boundary, and the batch
    engine's worker processes inherit this object by fork.
    """

    name = "shared"

    #: database filename inside the cache directory
    DB_NAME = "summaries.sqlite"

    def __init__(
        self,
        cache_dir,
        stats: "CacheStats | None" = None,
        busy_timeout_s: float = 5.0,
        max_retries: int = 5,
        retry_sleep_s: float = 0.01,
        quarantine_cap: int = QUARANTINE_CAP,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        from .cache import CacheStats

        self.cache_dir = Path(cache_dir)
        self.db_path = self.cache_dir / self.DB_NAME
        self.stats = stats if stats is not None else CacheStats()
        self.busy_timeout_s = busy_timeout_s
        self.max_retries = max(1, max_retries)
        self.retry_sleep_s = retry_sleep_s
        self.quarantine_cap = max(1, quarantine_cap)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None

    def bind_stats(self, stats: "CacheStats") -> None:
        self.stats = stats

    # -- connection management ----------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None or self._pid != os.getpid():
            # a forked child must not reuse the parent's handle
            conn = sqlite3.connect(
                self.db_path, timeout=self.busy_timeout_s, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS summaries ("
                " fingerprint TEXT PRIMARY KEY,"
                " digest BLOB NOT NULL,"
                " payload BLOB NOT NULL,"
                " stored_at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS quarantine ("
                " fingerprint TEXT,"
                " reason TEXT,"
                " payload BLOB,"
                " quarantined_at REAL)"
            )
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None
        self._pid = None

    def __getstate__(self):  # pickled into pool workers: drop the handle
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_pid"] = None
        return state

    # -- retry plumbing -----------------------------------------------------------

    def _with_retry(self, op, default=None, breaker: bool = True):
        """Run *op* (no-arg callable), retrying writer contention.

        Returns *default* when the database stays locked through every
        retry or fails structurally — a cache tier degrades, it never
        raises into the analysis.  Outcomes feed the circuit breaker
        (unless *breaker* is False — quarantine bookkeeping must not
        reset the failure streak its own corrupt row caused): busy
        exhaustion and structural errors are failures, and enough of
        them in a row trips the backend into local-only mode where
        *op* is skipped outright.
        """
        if breaker and not self._breaker_allow():
            return default
        for attempt in range(self.max_retries):
            try:
                if faults.should_fire("backend.busy"):
                    raise sqlite3.OperationalError(
                        "database is locked (injected fault: backend.busy)"
                    )
                result = op()
                if breaker:
                    self._breaker_ok()
                return result
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    self.stats.disk_errors += 1
                    if breaker:
                        self._breaker_fail()
                    return default
                self.stats.contention_retries += 1
                if attempt + 1 < self.max_retries:
                    time.sleep(self.retry_sleep_s * (attempt + 1))
            except sqlite3.DatabaseError:
                # malformed database file (torn at the filesystem level):
                # drop the handle so the next call reopens from scratch
                self.stats.disk_errors += 1
                self.close()
                if breaker:
                    self._breaker_fail()
                return default
        self.stats.disk_errors += 1
        if breaker:
            self._breaker_fail()
        return default

    # -- protocol -----------------------------------------------------------------

    def contains(self, fingerprint: str) -> bool:
        def probe():
            row = self._connection().execute(
                "SELECT 1 FROM summaries WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            return row is not None

        return bool(self._with_retry(probe, default=False))

    def get(self, fingerprint: str) -> Optional["RoutineCacheEntry"]:
        if faults.should_fire("cache.read"):
            raise OSError(f"injected fault: cache.read {fingerprint[:12]}")
        if faults.should_fire("backend.read", key=fingerprint[:12]):
            # a shared-tier read I/O error degrades to a miss (and feeds
            # the breaker) instead of raising into the analysis
            self.stats.disk_errors += 1
            self.stats.shared_misses += 1
            self._breaker_fail()
            return None
        if faults.should_fire("cache.corrupt"):
            # clobber the stored digest in place so the genuine
            # verification/quarantine path runs
            self._with_retry(
                lambda: self._connection().execute(
                    "UPDATE summaries SET digest = zeroblob(32)"
                    " WHERE fingerprint = ?",
                    (fingerprint,),
                )
            )

        def fetch():
            return self._connection().execute(
                "SELECT digest, payload FROM summaries WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()

        row = self._with_retry(fetch)
        if row is None:
            self.stats.shared_misses += 1
            return None
        entry, reason = _verify_payload(bytes(row[1]), bytes(row[0]))
        if entry is None:
            self._quarantine(fingerprint, reason or "corrupt", bytes(row[1]))
            self._breaker_fail()  # corrupt rows count toward tripping
            self.stats.shared_misses += 1
            return None
        self.stats.shared_hits += 1
        return entry

    def put(self, entry: "RoutineCacheEntry") -> None:
        if faults.should_fire("backend.write", key=entry.fingerprint[:12]):
            # a shared-tier write I/O error drops the store (always safe)
            self.stats.disk_errors += 1
            self._breaker_fail()
            return
        payload, digest = _encode_entry(entry)

        def upsert():
            self._connection().execute(
                "INSERT INTO summaries (fingerprint, digest, payload, stored_at)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(fingerprint) DO UPDATE SET"
                "  digest = excluded.digest,"
                "  payload = excluded.payload,"
                "  stored_at = excluded.stored_at",
                (entry.fingerprint, digest, payload, time.time()),
            )
            return True

        self._with_retry(upsert, default=False)

    def _quarantine(self, fingerprint: str, reason: str, payload: bytes) -> None:
        """Move a bad row into the quarantine table: counted, kept as
        evidence, never served again."""
        self.stats.disk_errors += 1
        self.stats.quarantined += 1

        def move():
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT INTO quarantine"
                    " (fingerprint, reason, payload, quarantined_at)"
                    " VALUES (?, ?, ?, ?)",
                    (fingerprint, reason, payload, time.time()),
                )
                conn.execute(
                    "DELETE FROM summaries WHERE fingerprint = ?", (fingerprint,)
                )
                excess = (
                    conn.execute(
                        "SELECT COUNT(*) FROM quarantine"
                    ).fetchone()[0]
                    - self.quarantine_cap
                )
                if excess > 0:  # hold the table at the cap, oldest first
                    conn.execute(
                        "DELETE FROM quarantine WHERE rowid IN ("
                        " SELECT rowid FROM quarantine"
                        " ORDER BY quarantined_at, rowid LIMIT ?)",
                        (excess,),
                    )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return max(0, excess)

        # breaker=False: quarantining is the *reaction* to a corrupt row;
        # its own success must not reset the failure streak being counted
        evicted = self._with_retry(move, default=0, breaker=False)
        if evicted:
            self.stats.quarantine_evicted += int(evicted)

    # -- introspection (tests, ops tooling) ---------------------------------------

    def quarantined_rows(self) -> list[tuple[str, str]]:
        """``(fingerprint, reason)`` of every quarantined row."""
        def fetch():
            return self._connection().execute(
                "SELECT fingerprint, reason FROM quarantine"
            ).fetchall()

        return [(r[0], r[1]) for r in (self._with_retry(fetch) or [])]

    def entry_count(self) -> int:
        def count():
            return self._connection().execute(
                "SELECT COUNT(*) FROM summaries"
            ).fetchone()[0]

        return int(self._with_retry(count, default=0) or 0)


def default_backend_kind() -> str:
    """The backend kind selected by the environment (``disk`` default)."""
    kind = os.environ.get(ENV_BACKEND_VAR, "").strip().lower()
    return kind if kind in BACKEND_KINDS else "disk"


def make_backend(
    kind: Optional[str],
    cache_dir,
    stats: "CacheStats | None" = None,
) -> Optional[CacheBackend]:
    """Construct the durable tier for *cache_dir*.

    ``cache_dir=None`` means memory-only: no backend, whatever *kind*
    says.  ``kind=None`` defers to :data:`ENV_BACKEND_VAR` and falls
    back to ``disk``.  Unknown kinds raise ``ValueError`` — a typo must
    not silently select a different persistence story.
    """
    if cache_dir is None:
        return None
    if kind is None:
        kind = default_backend_kind()
    kind = kind.strip().lower()
    if kind == "disk":
        return DiskBackend(cache_dir, stats)
    if kind == "shared":
        return SharedSQLiteBackend(cache_dir, stats)
    raise ValueError(
        f"unknown cache backend {kind!r} (expected one of {BACKEND_KINDS})"
    )
