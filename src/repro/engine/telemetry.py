"""Structured counters and the JSON serializers shared by the CLIs.

Two jobs:

* serialize pipeline results — :func:`loop_report_row` /
  :func:`result_to_dict` are the *single* machine-readable form of a
  verdict, used by ``panorama --json``, by ``panorama-batch``, and by
  the batch workers to ship results across process boundaries (dicts of
  primitives travel cheaply and diff cleanly, unlike pickled ASTs);
* roll analysis cost up — :class:`EngineTelemetry` aggregates per-file
  :class:`~repro.driver.panorama.StageTimings`,
  :class:`~repro.dataflow.context.AnalysisStats`, and
  :class:`~repro.engine.cache.CacheStats` into the ``--stats-json``
  export (the Figure 4 "analysis costs little" claim, at batch scale).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..dataflow.context import AnalysisStats
from ..driver.panorama import CompilationResult, LoopReport, StageTimings
from .cache import CacheStats


def _constraint_backend() -> str:
    from ..symbolic.matrix import backend_name

    return backend_name()


# --------------------------------------------------------------------------- #
# serializers (shared by `panorama --json` and the batch engine)
# --------------------------------------------------------------------------- #


def loop_report_row(report: LoopReport) -> dict[str, Any]:
    """One loop verdict as a flat JSON-ready dict."""
    verdict = report.verdict
    row: dict[str, Any] = {
        "loop": report.loop_id(),
        "routine": report.routine,
        "var": report.var,
        "label": report.source_label,
        "lineno": report.lineno,
        "status": report.status.value,
        "parallel": report.parallel,
        "degraded": report.degraded,
        "used_dataflow": report.used_dataflow,
        "screen": report.screen.verdict.value,
        "privatized": list(verdict.privatized) if verdict else [],
        "reductions": list(verdict.reductions) if verdict else [],
        "inductions": list(verdict.inductions) if verdict else [],
        "scans": list(verdict.scans) if verdict else [],
        "serial_reasons": list(verdict.serial_reasons) if verdict else [],
        "schedule": report.schedule,
        "evidence": [dict(e) for e in report.evidence],
        # the privatizer's offending intersections for candidates that
        # failed the MOD_<i ∩ UE_i test (empty when nothing failed)
        "conflicts": verdict.conflicts() if verdict else {},
        "speedup": round(report.speedup, 4),
        "pct_sequential": round(report.pct_sequential, 4),
        "copy_out": [
            {"name": d.name, "needs_copy_out": d.needs_copy_out}
            for d in report.copy_out
        ],
    }
    return row


def timings_dict(timings: StageTimings) -> dict[str, float]:
    """StageTimings as a JSON-ready dict of seconds."""
    return {
        "parse": timings.parse,
        "frontend": timings.frontend,
        "conventional": timings.conventional,
        "dataflow": timings.dataflow,
        "machine": timings.machine,
        "total": timings.total,
    }


def analysis_stats_dict(stats: AnalysisStats) -> dict[str, int]:
    """AnalysisStats as a JSON-ready dict."""
    return {
        "nodes_visited": stats.nodes_visited,
        "gar_ops": stats.gar_ops,
        "loops_summarized": stats.loops_summarized,
        "routines_summarized": stats.routines_summarized,
        "peak_gar_list": stats.peak_gar_list,
        "budget_degradations": stats.budget_degradations,
        "content_facts": stats.content_facts,
        "recurrence_matches": stats.recurrence_matches,
        "frontier_upgrades": stats.frontier_upgrades,
    }


def result_to_dict(
    result: CompilationResult,
    name: str | None = None,
    audit: "Any | None" = None,
) -> dict[str, Any]:
    """A whole compilation result as a JSON-ready dict.

    *audit* is an optional :class:`~repro.audit.AuditReport`; when given
    its counters and diagnostics ride under the ``"audit"`` key (the
    form ``EngineTelemetry.note_result`` folds and the batch workers
    ship).
    """
    out: dict[str, Any] = {
        "loops": [loop_report_row(r) for r in result.loops],
        "parallel_loops": len(result.parallel_loops()),
        "timings": timings_dict(result.timings),
        "stats": analysis_stats_dict(result.analyzer.stats),
        # symbolic-kernel counter/cache deltas ride as their own key:
        # "stats" stays a flat int dict the roll-up can fold blindly
        "symbolic": dict(result.analyzer.stats.symbolic),
    }
    if audit is not None:
        out["audit"] = audit.to_payload()
    if name is not None:
        out["name"] = name
    return out


# --------------------------------------------------------------------------- #
# roll-ups
# --------------------------------------------------------------------------- #


@dataclass
class EngineTelemetry:
    """Aggregated counters for one batch/incremental engine run."""

    files: int = 0
    errors: int = 0
    loops: int = 0
    parallel_loops: int = 0
    timings: dict[str, float] = field(
        default_factory=lambda: {
            "parse": 0.0,
            "frontend": 0.0,
            "conventional": 0.0,
            "dataflow": 0.0,
            "machine": 0.0,
            "total": 0.0,
        }
    )
    stats: dict[str, int] = field(
        default_factory=lambda: {
            "nodes_visited": 0,
            "gar_ops": 0,
            "loops_summarized": 0,
            "routines_summarized": 0,
            "peak_gar_list": 0,
            "budget_degradations": 0,
            "content_facts": 0,
            "recurrence_matches": 0,
            "frontier_upgrades": 0,
        }
    )
    #: resilience counters (batch-engine supervision, section
    #: "degradation ladder" of docs/robustness.md)
    resilience: dict[str, int] = field(
        default_factory=lambda: {
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "pool_rebuilds": 0,
            "quarantined": 0,
            "degraded_items": 0,
            "degraded_loops": 0,
            "resumed_items": 0,
        }
    )
    #: static-audit counters (docs/auditing.md), folded from per-item
    #: ``"audit"`` payloads; all zero when the audit did not run
    audit: dict[str, int] = field(
        default_factory=lambda: {
            "audited_files": 0,
            "loops_audited": 0,
            "pairs_checked": 0,
            "confirmed": 0,
            "guarded": 0,
            "undecided": 0,
            "skipped": 0,
            "evidence_replay": 0,
            "evidence_unsupported": 0,
            "oracle_conflicts": 0,
            "lint": 0,
            "sanitizer": 0,
        }
    )
    cache: CacheStats = field(default_factory=CacheStats)
    #: symbolic-kernel counter/cache deltas summed across results (flat
    #: ``repro.perf`` snapshot keys → numbers)
    symbolic: dict[str, float] = field(default_factory=dict)
    #: wall-clock seconds of the whole batch (not the sum of workers)
    wall_seconds: float = 0.0
    jobs: int = 1
    #: durable cache tier this run wrote through ("memory"/"disk"/"shared")
    cache_backend: str = "memory"
    #: topology-scheduler counters (SchedulePlan.as_dict + topo_hits:
    #: cache hits landed by items that waited on a scheduled provider)
    sched: dict[str, Any] = field(
        default_factory=lambda: {
            "mode": "arbitrary",
            "edges": 0,
            "gated_items": 0,
            "cyclic_items": 0,
            "opaque_items": 0,
            "topo_hits": 0,
        }
    )
    #: campaign provenance (seed, generator version, shard) — empty for
    #: plain batch runs; filled by repro.engine.campaign
    campaign: dict[str, Any] = field(default_factory=dict)
    #: verdict histogram: per-loop status values → counts
    verdicts: dict[str, int] = field(default_factory=dict)
    #: True when a drain request or interrupt stopped the run early
    #: (exit code 5; see docs/robustness.md "Crash safety & resume")
    interrupted: bool = False

    def note_result(self, payload: dict[str, Any]) -> None:
        """Fold one serialized compilation result into the roll-up."""
        self.files += 1
        rows = payload.get("loops", [])
        self.loops += len(rows)
        self.parallel_loops += sum(1 for r in rows if r.get("parallel"))
        for r in rows:
            status = r.get("status", "unknown")
            self.verdicts[status] = self.verdicts.get(status, 0) + 1
        self.resilience["degraded_loops"] += sum(
            1 for r in rows if r.get("degraded")
        )
        for key, value in payload.get("timings", {}).items():
            self.timings[key] = self.timings.get(key, 0.0) + value
        for key, value in payload.get("stats", {}).items():
            if key == "peak_gar_list":
                self.stats[key] = max(self.stats.get(key, 0), value)
            else:
                self.stats[key] = self.stats.get(key, 0) + value
        for key, value in payload.get("symbolic", {}).items():
            self.symbolic[key] = self.symbolic.get(key, 0) + value
        audit = payload.get("audit")
        if audit is not None:
            self.audit["audited_files"] += 1
            for key, value in audit.get("counts", {}).items():
                self.audit[key] = self.audit.get(key, 0) + value

    def note_cache(self, stats: CacheStats) -> None:
        """Fold one worker's cache counters into the roll-up."""
        self.cache.merge(stats)

    def as_dict(self) -> dict[str, Any]:
        return {
            "files": self.files,
            "errors": self.errors,
            "loops": self.loops,
            "parallel_loops": self.parallel_loops,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "timings": dict(self.timings),
            "stats": dict(self.stats),
            "cache": self.cache.as_dict(),
            "cache_backend": self.cache_backend,
            "symbolic": dict(self.symbolic),
            "constraint_backend": _constraint_backend(),
            "resilience": dict(self.resilience),
            "audit": dict(self.audit),
            "sched": dict(self.sched),
            "campaign": dict(self.campaign),
            "verdicts": dict(self.verdicts),
            "interrupted": self.interrupted,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the ``--stats-json`` export."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    def summary_line(self) -> str:
        """One-line human-readable roll-up."""
        c = self.cache
        return (
            f"{self.files} file(s), {self.loops} loops "
            f"({self.parallel_loops} parallel) in {self.wall_seconds:.2f}s "
            f"wall [{self.jobs} job(s)]; cache[{self.cache_backend}]: "
            f"{c.hits} hit(s), {c.misses} miss(es), "
            f"{c.evictions} eviction(s)"
        )
