"""The batch analysis engine: fan many sources over worker processes.

``BatchEngine`` amortizes analysis cost two ways at once:

* **parallelism** — items fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (analysis is pure
  CPU-bound Python, so processes, not threads);
* **the summary cache** — every worker opens the same on-disk
  :class:`~repro.engine.cache.SummaryCache` tier, so routines shared
  between items (or re-analyzed across batch runs) are summarized once.

Workers return *serialized* verdict rows (the same dicts ``panorama
--json`` prints) plus their cache delta — the fingerprints they wrote to
the shared disk tier — which the parent merges back into its own memory
tier, so a follow-up in-process run is warm without touching disk.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..dataflow.context import AnalysisOptions
from ..driver.panorama import Panorama
from .cache import CacheStats, CachingHooks, SummaryCache
from .telemetry import EngineTelemetry, result_to_dict


@dataclass(frozen=True)
class BatchItem:
    """One unit of batch work: a named Fortran source."""

    name: str
    source: str
    #: problem-size bindings for the machine model (kernel registry)
    sizes: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_path(cls, path: str | Path) -> "BatchItem":
        p = Path(path)
        return cls(name=p.name, source=p.read_text())


def items_from_paths(paths: Iterable[str | Path]) -> list[BatchItem]:
    """Batch items for a list of Fortran source files."""
    return [BatchItem.from_path(p) for p in paths]


def items_from_kernel_registry() -> list[BatchItem]:
    """One batch item per distinct Perfect-benchmark program."""
    from ..kernels import KERNELS

    by_program: dict[str, BatchItem] = {}
    for kernel in KERNELS:
        if kernel.program not in by_program:
            by_program[kernel.program] = BatchItem(
                name=kernel.program, source=kernel.source, sizes=dict(kernel.sizes)
            )
    return list(by_program.values())


@dataclass
class BatchItemResult:
    """What one item's analysis produced (or the error it died with)."""

    name: str
    payload: Optional[dict[str, Any]] = None  # result_to_dict output
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: cache delta: fingerprints this item wrote to the shared disk tier
    stored_fingerprints: list[str] = field(default_factory=list)
    reused_routines: list[str] = field(default_factory=list)
    computed_routines: list[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def rows(self) -> list[dict[str, Any]]:
        """The per-loop verdict rows (empty on error)."""
        return list(self.payload.get("loops", [])) if self.payload else []


@dataclass
class BatchReport:
    """Everything a batch run produced, in input order."""

    results: list[BatchItemResult]
    telemetry: EngineTelemetry

    def result(self, name: str) -> BatchItemResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def verdict_rows(self) -> dict[str, list[dict[str, Any]]]:
        """All verdict rows, keyed by item name."""
        return {r.name: r.rows() for r in self.results}

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


# --------------------------------------------------------------------------- #
# the worker body (top level: must be picklable by the process pool)
# --------------------------------------------------------------------------- #


def _analyze_item(
    item: BatchItem,
    options: AnalysisOptions,
    cache_dir: Optional[str],
    run_machine_model: bool,
    cache: Optional[SummaryCache] = None,
) -> BatchItemResult:
    """Analyze one item with a cache-wired pipeline; never raises."""
    try:
        own_cache = cache if cache is not None else SummaryCache(cache_dir)
        before = own_cache.stats.copy()
        hooks = CachingHooks(own_cache)
        panorama = Panorama(
            options,
            sizes=item.sizes,
            run_machine_model=run_machine_model,
            hooks=hooks,
        )
        result = panorama.compile(item.source)
        return BatchItemResult(
            name=item.name,
            payload=result_to_dict(result, name=item.name),
            cache_stats=own_cache.stats.delta(before),
            stored_fingerprints=list(hooks.stored_fingerprints),
            reused_routines=sorted(hooks.reused),
            computed_routines=sorted(hooks.computed),
        )
    except Exception:
        return BatchItemResult(name=item.name, error=traceback.format_exc())


def _worker_main(args: tuple) -> BatchItemResult:
    item, options, cache_dir, run_machine_model = args
    return _analyze_item(item, options, cache_dir, run_machine_model)


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #


class BatchEngine:
    """Analyze many Fortran sources with shared caching and N workers.

    ``jobs=1`` runs in-process against the engine's own two-tier cache;
    ``jobs>1`` fans items across a process pool whose workers share the
    *disk* tier (``cache_dir``) and ship their cache deltas back.  With
    ``jobs>1`` and no ``cache_dir`` each worker still caches privately
    in memory, but nothing is shared — pass a directory to get the
    amortization the engine exists for.
    """

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        run_machine_model: bool = True,
        max_memory_entries: int = 512,
    ) -> None:
        self.options = options or AnalysisOptions()
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.jobs = max(1, jobs)
        self.run_machine_model = run_machine_model
        self.cache = SummaryCache(self.cache_dir, max_memory_entries)

    def run(self, items: Sequence[BatchItem]) -> BatchReport:
        """Analyze every item; results come back in input order."""
        t0 = time.perf_counter()
        if self.jobs == 1 or len(items) <= 1:
            results = [
                _analyze_item(
                    item,
                    self.options,
                    self.cache_dir,
                    self.run_machine_model,
                    cache=self.cache,
                )
                for item in items
            ]
        else:
            results = self._run_pool(items)
        report = BatchReport(results=results, telemetry=EngineTelemetry())
        tele = report.telemetry
        tele.jobs = self.jobs
        tele.wall_seconds = time.perf_counter() - t0
        for res in results:
            if res.ok and res.payload is not None:
                tele.note_result(res.payload)
            else:
                tele.errors += 1
            tele.note_cache(res.cache_stats)
        return report

    def run_paths(self, paths: Iterable[str | Path]) -> BatchReport:
        """Convenience: analyze a list of source files."""
        return self.run(items_from_paths(paths))

    # -- internals ----------------------------------------------------------------

    def _run_pool(self, items: Sequence[BatchItem]) -> list[BatchItemResult]:
        tasks = [
            (item, self.options, self.cache_dir, self.run_machine_model)
            for item in items
        ]
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_worker_main, tasks))
        # merge the workers' cache deltas into this process's memory tier
        if self.cache_dir is not None:
            delta: list[str] = []
            for res in results:
                delta.extend(res.stored_fingerprints)
            self.cache.adopt(delta)
        return results
