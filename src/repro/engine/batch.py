"""The batch analysis engine: fan many sources over worker processes.

``BatchEngine`` amortizes analysis cost two ways at once:

* **parallelism** — items fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (analysis is pure
  CPU-bound Python, so processes, not threads);
* **the summary cache** — every worker opens the same on-disk
  :class:`~repro.engine.cache.SummaryCache` tier, so routines shared
  between items (or re-analyzed across batch runs) are summarized once.

Workers return *serialized* verdict rows (the same dicts ``panorama
--json`` prints) plus their cache delta — the fingerprints they wrote to
the shared disk tier — which the parent merges back into its own memory
tier, so a follow-up in-process run is warm without touching disk.

The pool is *supervised* (docs/robustness.md): every item carries a
typed error kind instead of a bare traceback, futures get per-item
wall-clock deadlines, failed items are retried with exponential backoff
and seeded jitter, a crashed or hung worker takes down only its item
(the pool is rebuilt and in-flight innocents are re-dispatched without
an attempt penalty), and an item that keeps failing is quarantined so
one poison input can never stall the batch.  A batch therefore always
terminates with a complete :class:`BatchReport`.
"""

from __future__ import annotations

import os
import random
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..dataflow.context import AnalysisOptions
from ..driver.panorama import Panorama
from ..errors import (
    EXIT_DEGRADED,
    EXIT_HARD_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    FAULT_ERROR_KINDS,
    HARD_ERROR_KINDS,
    classify_exception,
)
from ..resilience import faults
from ..resilience.backoff import backoff_delay
from .cache import CacheStats, CachingHooks, SummaryCache
from .ledger import LedgerReplay, LedgerWriter
from .scheduler import SchedulePlan, plan_schedule, resolve_schedule_mode
from .telemetry import EngineTelemetry, result_to_dict


@dataclass(frozen=True)
class BatchItem:
    """One unit of batch work: a named Fortran source."""

    name: str
    source: str
    #: problem-size bindings for the machine model (kernel registry)
    sizes: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_path(cls, path: str | Path) -> "BatchItem":
        p = Path(path)
        return cls(name=p.name, source=p.read_text())


def items_from_paths(paths: Iterable[str | Path]) -> list[BatchItem]:
    """Batch items for a list of Fortran source files."""
    return [BatchItem.from_path(p) for p in paths]


def items_from_kernel_registry() -> list[BatchItem]:
    """One batch item per distinct Perfect-benchmark program."""
    from ..kernels import KERNELS

    by_program: dict[str, BatchItem] = {}
    for kernel in KERNELS:
        if kernel.program not in by_program:
            by_program[kernel.program] = BatchItem(
                name=kernel.program, source=kernel.source, sizes=dict(kernel.sizes)
            )
    return list(by_program.values())


@dataclass
class BatchItemResult:
    """What one item's analysis produced (or the error it died with)."""

    name: str
    payload: Optional[dict[str, Any]] = None  # result_to_dict output
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: cache delta: fingerprints this item wrote to the shared disk tier
    stored_fingerprints: list[str] = field(default_factory=list)
    reused_routines: list[str] = field(default_factory=list)
    computed_routines: list[str] = field(default_factory=list)
    error: Optional[str] = None
    #: typed taxonomy of the failure (repro.errors.classify_exception):
    #: "source" | "analysis" | "internal" | "timeout" | "worker-crash" |
    #: "oom" | "budget"; None when ok
    error_kind: Optional[str] = None
    #: how many times the item was dispatched (retries included)
    attempts: int = 1
    #: True when the item used up max_attempts and was set aside
    quarantined: bool = False
    #: True when this result was served from a run ledger (--resume)
    #: instead of being analyzed by this process
    from_ledger: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def degraded(self) -> bool:
        """Did resilience machinery (not clean analysis) shape this result?

        True for fault-kind failures (timeout, crash, OOM), for
        quarantined items, and for successful items whose verdicts
        include budget-exhaustion fallbacks.
        """
        if self.quarantined:
            return True
        if not self.ok:
            return self.error_kind in FAULT_ERROR_KINDS
        if self.payload is None:
            return False
        if self.payload.get("stats", {}).get("budget_degradations"):
            return True
        return any(r.get("degraded") for r in self.payload.get("loops", []))

    def rows(self) -> list[dict[str, Any]]:
        """The per-loop verdict rows (empty on error)."""
        return list(self.payload.get("loops", [])) if self.payload else []


@dataclass
class BatchReport:
    """Everything a batch run produced, in input order."""

    results: list[BatchItemResult]
    telemetry: EngineTelemetry
    #: every input item has a result (the supervisor guarantees this;
    #: False would mean the engine itself lost items — unless the run
    #: was interrupted, in which case undispatched items have none)
    complete: bool = True
    #: True when a drain request or KeyboardInterrupt stopped the run
    #: early; everything finalized so far was flushed (cache deltas,
    #: ledger records), so the partial state is consistent and a
    #: ledger resume continues exactly where this run stopped
    interrupted: bool = False

    def result(self, name: str) -> BatchItemResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def verdict_rows(self) -> dict[str, list[dict[str, Any]]]:
        """All verdict rows, keyed by item name."""
        return {r.name: r.rows() for r in self.results}

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def degraded(self) -> bool:
        return any(r.degraded for r in self.results)

    def hard_failures(self) -> list[BatchItemResult]:
        """Failures that are *not* resilience degradations: bad source,
        analysis bugs, unclassified crashes."""
        return [
            r
            for r in self.results
            if not r.ok
            and (r.error_kind is None or r.error_kind in HARD_ERROR_KINDS)
        ]

    def audit_diagnostics(self) -> list:
        """Every audit diagnostic across the batch, rehydrated.

        Items are :class:`~repro.diagnostics.Diagnostic` objects (the
        workers ship them as dicts inside the payload's ``"audit"`` key).
        Empty when the engine ran without ``audit=True``.
        """
        from ..diagnostics import diagnostic_from_dict

        out = []
        for res in self.results:
            if res.payload is None:
                continue
            audit = res.payload.get("audit")
            if not audit:
                continue
            out.extend(
                diagnostic_from_dict(d) for d in audit.get("diagnostics", [])
            )
        return out

    def audit_errors(self) -> list:
        """Error-severity audit diagnostics (what --strict-audit fails on)."""
        from ..diagnostics import Severity

        return [
            d for d in self.audit_diagnostics() if d.level is Severity.ERROR
        ]

    def exit_code(self) -> int:
        """Process exit status: 0 clean, 3 degraded-but-complete, 1
        hard, 5 interrupted-but-consistent.

        The distinction lets callers script around flaky infrastructure
        (3 = every item has a typed verdict or typed failure, some were
        degraded; 5 = a drain/interrupt stopped the run early but the
        partial state is flushed and resumable) versus real
        input/analysis errors (1).
        """
        if self.hard_failures():
            return EXIT_HARD_FAILURE
        if self.interrupted and not self.complete:
            return EXIT_INTERRUPTED
        if not self.complete:
            return EXIT_HARD_FAILURE
        if self.degraded or not self.ok:
            return EXIT_DEGRADED
        return EXIT_OK


# --------------------------------------------------------------------------- #
# the worker body (top level: must be picklable by the process pool)
# --------------------------------------------------------------------------- #


def _analyze_item(
    item: BatchItem,
    options: AnalysisOptions,
    cache_dir: Optional[str],
    run_machine_model: bool,
    cache: Optional[SummaryCache] = None,
    attempt: int = 1,
    audit: bool = False,
    cache_backend: Optional[str] = None,
) -> BatchItemResult:
    """Analyze one item with a cache-wired pipeline.

    Never raises for analysis failures — every exception comes back as a
    typed :class:`BatchItemResult` — but interrupt-style exceptions
    (KeyboardInterrupt, SystemExit) are re-raised so Ctrl-C still stops
    a batch, and MemoryError is reported as kind ``"oom"`` rather than
    being formatted into a traceback (formatting may itself re-raise).
    """
    # fault-injection sites (no-ops unless a plan is installed); the
    # attempt number is the occurrence so an "@1" worker fault fires on
    # the first dispatch only, even from a freshly respawned worker
    if faults.should_fire("worker.crash", key=item.name, occurrence=attempt):
        os._exit(86)
    try:
        if faults.should_fire("item.hang", key=item.name, occurrence=attempt):
            time.sleep(faults.HANG_SECONDS)
        if faults.should_fire("item.error", key=item.name, occurrence=attempt):
            raise RuntimeError(f"injected fault: item.error {item.name}")
        own_cache = (
            cache
            if cache is not None
            else SummaryCache(cache_dir, backend=cache_backend)
        )
        before = own_cache.stats.copy()
        hooks = CachingHooks(own_cache)
        panorama = Panorama(
            options,
            sizes=item.sizes,
            run_machine_model=run_machine_model,
            hooks=hooks,
        )
        result = panorama.compile(item.source)
        audit_report = None
        if audit:
            from ..audit import audit_compilation

            audit_report = audit_compilation(
                result, item.name, source=item.source
            )
        return BatchItemResult(
            name=item.name,
            payload=result_to_dict(result, name=item.name, audit=audit_report),
            cache_stats=own_cache.stats.delta(before),
            stored_fingerprints=list(hooks.stored_fingerprints),
            reused_routines=sorted(hooks.reused),
            computed_routines=sorted(hooks.computed),
            attempts=attempt,
        )
    except (KeyboardInterrupt, SystemExit, GeneratorExit):
        raise
    except MemoryError:
        return BatchItemResult(
            name=item.name,
            error="MemoryError during analysis",
            error_kind="oom",
            attempts=attempt,
        )
    except BaseException as exc:
        return BatchItemResult(
            name=item.name,
            error=traceback.format_exc(),
            error_kind=classify_exception(exc),
            attempts=attempt,
        )


def _worker_main(args: tuple) -> BatchItemResult:
    (
        item,
        options,
        cache_dir,
        run_machine_model,
        attempt,
        audit,
        cache_backend,
    ) = args
    return _analyze_item(
        item,
        options,
        cache_dir,
        run_machine_model,
        attempt=attempt,
        audit=audit,
        cache_backend=cache_backend,
    )


def _result_from_ledger(record: Mapping[str, Any]) -> BatchItemResult:
    """Rehydrate a ledger ``done`` record into a served result.

    The payload (and its cache-delta attribution) is exactly what the
    original process computed — replay already verified the digest — so
    a resumed run's report folds the same verdict data the uninterrupted
    run would have.
    """
    known = CacheStats().as_dict()
    raw = record.get("cache_stats") or {}
    return BatchItemResult(
        name=str(record.get("name", "?")),
        payload=record.get("payload"),
        cache_stats=CacheStats(
            **{k: int(v) for k, v in raw.items() if k in known}
        ),
        stored_fingerprints=list(record.get("stored_fingerprints", [])),
        reused_routines=list(record.get("reused_routines", [])),
        computed_routines=list(record.get("computed_routines", [])),
        attempts=int(record.get("attempt", 1)),
        from_ledger=True,
    )


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #


class BatchEngine:
    """Analyze many Fortran sources with shared caching and N workers.

    ``jobs=1`` runs in-process against the engine's own two-tier cache;
    ``jobs>1`` fans items across a process pool whose workers share the
    *disk* tier (``cache_dir``) and ship their cache deltas back.  With
    ``jobs>1`` and no ``cache_dir`` each worker still caches privately
    in memory, but nothing is shared — pass a directory to get the
    amortization the engine exists for.
    """

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        run_machine_model: bool = True,
        max_memory_entries: int = 512,
        timeout_per_item: float | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        retry_seed: int = 0,
        audit: bool = False,
        cache_backend: str | None = None,
        schedule: str = "auto",
        ledger: Optional[LedgerWriter] = None,
        resume: Optional[LedgerReplay] = None,
        drain_timeout: float = 10.0,
    ) -> None:
        self.options = options or AnalysisOptions()
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.jobs = max(1, jobs)
        self.run_machine_model = run_machine_model
        #: durable-tier selection ("disk" | "shared" | None = env/default)
        self.cache_backend = cache_backend
        self.cache = SummaryCache(
            self.cache_dir, max_memory_entries, backend=cache_backend
        )
        #: dispatch ordering: "auto" | "topo" | "arbitrary"
        self.schedule = schedule
        #: the plan of the most recent run (telemetry, tests)
        self.last_plan: Optional[SchedulePlan] = None
        #: wall-clock seconds before an in-flight item is declared hung
        #: (pool mode only; None = wait forever)
        self.timeout_per_item = timeout_per_item
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        #: seed for the retry-backoff jitter (deterministic chaos runs)
        self.retry_seed = retry_seed
        #: run the static race auditor on every item (docs/auditing.md)
        self.audit = audit
        #: supervision counters of the most recent run (rolled into the
        #: report's EngineTelemetry)
        self.supervision: dict[str, int] = {}
        #: run ledger writer (None = no journaling) and the replay of a
        #: prior ledger to resume from (None = fresh run); the caller
        #: must have verified replay identity (ledger.verify_identity)
        self.ledger = ledger
        self.resume = resume
        #: graceful drain: once requested, no new items are dispatched,
        #: in-flight ones get this many seconds to finish, and the run
        #: ends interrupted-but-consistent (report.interrupted)
        self.drain_timeout = drain_timeout
        self._drain_event = threading.Event()
        #: True when the most recent run was stopped early
        self.interrupted = False
        #: items finalized this run (the engine.crash fault occurrence)
        self._finalized = 0

    def request_drain(self) -> None:
        """Stop dispatching; finish in flight; flush; end the run.

        Safe to call from a signal handler or another thread — the run
        loop polls the event between dispatches.
        """
        self._drain_event.set()

    @property
    def draining(self) -> bool:
        return self._drain_event.is_set()

    def _finalize(self, index: int, result: BatchItemResult) -> None:
        """Journal one finalized item, then run the engine.crash site.

        The fault fires *after* the ledger record lands — exactly the
        hard-kill point the resume machinery must survive — with the
        running finalized count as the occurrence, so ``engine.crash@N``
        kills the process after the N-th finalized item.
        """
        if self.ledger is not None:
            if result.ok:
                self.ledger.record_done(index, result)
            else:
                self.ledger.record_failed(index, result)
        self._finalized += 1
        if faults.should_fire(
            "engine.crash", key=result.name, occurrence=self._finalized
        ):
            os._exit(86)

    def run(self, items: Sequence[BatchItem]) -> BatchReport:
        """Analyze every item; results come back in input order.

        With a ``resume`` replay, items whose ledger records say
        ``done`` are served from the ledger (their cache deltas adopted
        into the memory tier) and only the rest are analyzed.  A drain
        request or KeyboardInterrupt stops the run early: everything
        finalized keeps its result, cache deltas and ledger records are
        flushed, and the report comes back ``interrupted``.
        """
        t0 = time.perf_counter()
        self.supervision = {
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "pool_rebuilds": 0,
            "quarantined": 0,
        }
        self.interrupted = False
        self._finalized = 0
        results_by_idx: list[Optional[BatchItemResult]] = [None] * len(items)
        resumed: dict[int, BatchItemResult] = {}
        if self.resume is not None:
            for idx, item in enumerate(items):
                record = self.resume.done.get(idx)
                if record is not None and record.get("name") == item.name:
                    resumed[idx] = _result_from_ledger(record)
            for idx, res in resumed.items():
                results_by_idx[idx] = res
            if resumed and self.cache_dir is not None:
                # their summaries are already in the durable tier: prime
                # the memory tier so re-analyzed items start warm
                self.cache.adopt(
                    fp
                    for res in resumed.values()
                    for fp in res.stored_fingerprints
                )
        active = [i for i in range(len(items)) if i not in resumed]
        sub_items = [items[i] for i in active]
        # timeouts need process isolation: a hung item can only be killed
        # from outside, so supervision forces the pool even for one item
        supervised = self.jobs > 1 and (
            len(sub_items) > 1 or self.timeout_per_item is not None
        )
        mode = resolve_schedule_mode(
            self.schedule, len(sub_items), self.jobs, self.cache_dir
        )
        plan = plan_schedule(sub_items, self.options, mode)
        self.last_plan = plan
        if not supervised:
            try:
                for sub_idx in plan.order:
                    if self._drain_event.is_set():
                        self.interrupted = True
                        break
                    idx = active[sub_idx]
                    if self.ledger is not None:
                        self.ledger.record_dispatched(
                            idx, sub_items[sub_idx].name, attempt=1
                        )
                    res = _analyze_item(
                        sub_items[sub_idx],
                        self.options,
                        self.cache_dir,
                        self.run_machine_model,
                        cache=self.cache,
                        audit=self.audit,
                        cache_backend=self.cache_backend,
                    )
                    results_by_idx[idx] = res
                    self._finalize(idx, res)
            except KeyboardInterrupt:
                # Ctrl-C mid-item: keep everything finalized so far —
                # the in-process cache already holds its stores, and the
                # ledger's end record below makes the stop consistent
                self.interrupted = True
        else:
            pool_results = self._run_pool(sub_items, plan, index_map=active)
            for sub_idx, res in enumerate(pool_results):
                if res is not None:
                    results_by_idx[active[sub_idx]] = res
        results = [r for r in results_by_idx if r is not None]
        complete = len(results) == len(items)
        if self.ledger is not None:
            self.ledger.record_end(
                "interrupted" if self.interrupted else "complete"
            )
        report = BatchReport(
            results=results,
            telemetry=EngineTelemetry(),
            complete=complete,
            interrupted=self.interrupted,
        )
        tele = report.telemetry
        tele.jobs = self.jobs
        tele.wall_seconds = time.perf_counter() - t0
        tele.cache_backend = self.cache.backend_name
        tele.interrupted = self.interrupted
        tele.sched.update(plan.as_dict())
        # topo payoff: cache hits landed by items that waited on at
        # least one scheduled provider (their warmth is the plan's work)
        sub_results = [results_by_idx[i] for i in active]
        tele.sched["topo_hits"] = sum(
            sub_results[i].cache_stats.hits
            for i, d in plan.deps.items()
            if d and i < len(sub_results) and sub_results[i] is not None
        )
        tele.resilience["resumed_items"] = len(resumed)
        for res in results:
            if res.ok and res.payload is not None:
                tele.note_result(res.payload)
            else:
                tele.errors += 1
            tele.note_cache(res.cache_stats)
            if res.degraded:
                tele.resilience["degraded_items"] += 1
        for key, value in self.supervision.items():
            tele.resilience[key] = tele.resilience.get(key, 0) + value
        return report

    def run_paths(self, paths: Iterable[str | Path]) -> BatchReport:
        """Convenience: analyze a list of source files."""
        return self.run(items_from_paths(paths))

    # -- internals ----------------------------------------------------------------

    def _task(self, item: BatchItem, attempt: int) -> tuple:
        return (
            item,
            self.options,
            self.cache_dir,
            self.run_machine_model,
            attempt,
            self.audit,
            self.cache_backend,
        )

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor) -> None:
        """Stop a pool that may contain hung workers.

        ``shutdown`` alone would join the workers and block forever on a
        hung one, so the processes are terminated first.
        """
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(
        self,
        items: Sequence[BatchItem],
        plan: Optional[SchedulePlan] = None,
        index_map: Optional[Sequence[int]] = None,
    ) -> list[Optional[BatchItemResult]]:
        """Supervised fan-out: deadlines, retries, pool rebuilds.

        State machine per item: *waiting* (topology-gated) → *ready* →
        in-flight → (result | retry with backoff | quarantine).  The
        loop ends only when every item has a result, so the batch can
        never deadlock on a lost item; gated items are released when
        their providers finalize (success *or* failure — a dead
        provider must never strand its consumers).  A drain request
        empties the dispatch queues, gives in-flight items
        ``drain_timeout`` seconds, then abandons the rest (their ledger
        state stays ``dispatched``, so a resume re-runs them) — either
        way the cache-delta merge below still happens, so nothing
        finalized is lost.

        *index_map* translates local indexes to the caller's item space
        (ledger records must carry original indexes when a resume has
        filtered the item list).
        """
        if index_map is None:
            index_map = list(range(len(items)))
        workers = min(self.jobs, len(items))
        results: list[Optional[BatchItemResult]] = [None] * len(items)
        attempts = [0] * len(items)
        deps: dict[int, set[int]] = (
            {i: set(d) for i, d in plan.deps.items()}
            if plan is not None
            else {i: set() for i in range(len(items))}
        )
        dependents: dict[int, list[int]] = {i: [] for i in range(len(items))}
        for i, d in deps.items():
            for j in d:
                dependents[j].append(i)
        dispatch = plan.order if plan is not None else range(len(items))
        waiting: set[int] = {i for i in dispatch if deps[i]}
        ready: deque[int] = deque(i for i in dispatch if not deps[i])
        delayed: list[tuple[float, int]] = []  # (resume monotonic time, idx)
        pending: dict[Any, tuple[int, Optional[float]]] = {}
        rng = random.Random(self.retry_seed)
        sup = self.supervision
        pool = ProcessPoolExecutor(max_workers=workers)
        # probe mode: after a pool breakage the culprit cannot be
        # attributed, so items are dispatched one at a time until a
        # worker round-trips successfully — a persistently crashing item
        # then only ever takes itself down, not in-flight innocents
        probe = False

        def release(idx: int) -> None:
            """A provider finalized: unblock consumers whose last gate
            this was (dispatch order keeps the plan's ordering)."""
            for dep in dependents[idx]:
                gates = deps[dep]
                gates.discard(idx)
                if not gates and dep in waiting:
                    waiting.discard(dep)
                    ready.append(dep)

        def submit(idx: int) -> None:
            attempts[idx] += 1
            if self.ledger is not None:
                self.ledger.record_dispatched(
                    index_map[idx], items[idx].name, attempt=attempts[idx]
                )
            fut = pool.submit(_worker_main, self._task(items[idx], attempts[idx]))
            deadline = (
                time.monotonic() + self.timeout_per_item
                if self.timeout_per_item is not None
                else None
            )
            pending[fut] = (idx, deadline)

        def fail(idx: int, kind: str, message: str) -> None:
            """Record a failed attempt: retry, or produce a final result."""
            if kind != "source" and attempts[idx] < self.max_attempts:
                sup["retries"] += 1
                delay = backoff_delay(attempts[idx], self.backoff_base, rng)
                delayed.append((time.monotonic() + delay, idx))
                return
            quarantined = kind not in ("source",) and attempts[idx] >= self.max_attempts
            if quarantined:
                sup["quarantined"] += 1
            results[idx] = BatchItemResult(
                name=items[idx].name,
                error=message,
                error_kind=kind,
                attempts=attempts[idx],
                quarantined=quarantined,
            )
            release(idx)
            self._finalize(index_map[idx], results[idx])

        def rebuild_pool() -> ProcessPoolExecutor:
            sup["pool_rebuilds"] += 1
            self._teardown_pool(pool)
            return ProcessPoolExecutor(max_workers=workers)

        draining = False
        drain_deadline: Optional[float] = None
        try:
            while ready or delayed or pending or waiting:
                if self._drain_event.is_set() and not draining:
                    # graceful drain: dispatch nothing further, let the
                    # in-flight items finish inside the timeout; dropped
                    # queue entries keep ledger state "dispatched"/none
                    # and are re-dispatched by a resume
                    draining = True
                    self.interrupted = True
                    drain_deadline = time.monotonic() + max(
                        0.0, self.drain_timeout
                    )
                    ready.clear()
                    delayed.clear()
                    waiting.clear()
                if draining and not pending:
                    break
                now = time.monotonic()
                if waiting and not (ready or delayed or pending):
                    # safety valve: gating must never deadlock the batch
                    # — if nothing can make progress, drop the remaining
                    # gates (the plan is a perf hint, not a correctness
                    # invariant)
                    ready.extend(sorted(waiting))
                    waiting.clear()
                if delayed:
                    still: list[tuple[float, int]] = []
                    for resume, idx in delayed:
                        if resume <= now:
                            ready.append(idx)
                        else:
                            still.append((resume, idx))
                    delayed = still
                while ready and not (probe and pending):
                    idx = ready.popleft()
                    try:
                        submit(idx)
                    except BrokenProcessPool:
                        sup["worker_crashes"] += 1
                        probe = True
                        fail(
                            idx,
                            "worker-crash",
                            f"worker pool broke submitting {items[idx].name} "
                            f"(attempt {attempts[idx]})",
                        )
                        pool = rebuild_pool()
                if not pending:
                    # everything is backing off: sleep to the nearest
                    # resume time
                    if delayed:
                        time.sleep(
                            max(0.0, min(t for t, _ in delayed) - now)
                        )
                    continue

                wait_until: Optional[float] = None
                for _, deadline in pending.values():
                    if deadline is not None:
                        wait_until = (
                            deadline
                            if wait_until is None
                            else min(wait_until, deadline)
                        )
                for resume, _ in delayed:
                    wait_until = (
                        resume
                        if wait_until is None
                        else min(wait_until, resume)
                    )
                if drain_deadline is not None:
                    wait_until = (
                        drain_deadline
                        if wait_until is None
                        else min(wait_until, drain_deadline)
                    )
                timeout = (
                    None if wait_until is None else max(0.0, wait_until - now)
                )
                done, _ = wait(
                    set(pending), timeout=timeout, return_when=FIRST_COMPLETED
                )

                broken = False
                for fut in done:
                    idx, _ = pending.pop(fut)
                    try:
                        res = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        sup["worker_crashes"] += 1
                        fail(
                            idx,
                            "worker-crash",
                            f"worker process died analyzing "
                            f"{items[idx].name} (attempt {attempts[idx]})",
                        )
                    except Exception as exc:  # pickling errors etc.
                        fail(idx, classify_exception(exc), repr(exc))
                    else:
                        # the worker round-tripped: crashes are
                        # attributable again, leave probe mode
                        probe = False
                        if res.ok:
                            results[idx] = res
                            release(idx)
                            self._finalize(index_map[idx], res)
                        else:
                            fail(idx, res.error_kind or "internal", res.error)
                if broken:
                    # the crash poisons every in-flight future: penalize
                    # them one attempt each (the culprit cannot be
                    # attributed) and re-dispatch through the retry path
                    # on a fresh pool
                    probe = True
                    sup["worker_crashes"] += len(pending)
                    for fut, (idx, _) in list(pending.items()):
                        fail(
                            idx,
                            "worker-crash",
                            f"worker pool broke while {items[idx].name} was "
                            f"in flight (attempt {attempts[idx]})",
                        )
                    pending.clear()
                    pool = rebuild_pool()
                    continue

                # deadline sweep: in-flight items past their budget hung
                now = time.monotonic()
                expired = [
                    (fut, idx)
                    for fut, (idx, deadline) in pending.items()
                    if deadline is not None and now >= deadline
                ]
                if expired:
                    sup["timeouts"] += len(expired)
                    expired_ids = set()
                    for fut, idx in expired:
                        expired_ids.add(idx)
                        del pending[fut]
                        fail(
                            idx,
                            "timeout",
                            f"{items[idx].name} exceeded "
                            f"{self.timeout_per_item}s "
                            f"(attempt {attempts[idx]})",
                        )
                    # a hung worker cannot be cancelled: rebuild the pool
                    # and re-dispatch the innocent in-flight items at no
                    # attempt cost (their work is lost, not their fault)
                    innocents = [idx for _, (idx, _) in pending.items()]
                    pending.clear()
                    for idx in innocents:
                        attempts[idx] -= 1
                        ready.append(idx)
                    pool = rebuild_pool()

                if (
                    draining
                    and pending
                    and drain_deadline is not None
                    and time.monotonic() >= drain_deadline
                ):
                    # drain timeout expired with work still in flight:
                    # abandon it (ledger state stays "dispatched", so a
                    # resume re-runs exactly those items)
                    pending.clear()
                    break
        except KeyboardInterrupt:
            # Ctrl-C without a drain handler installed: salvage every
            # finalized result instead of dropping the whole batch; the
            # delta merge below still flushes the warm summaries the
            # workers shipped before the interrupt
            self.interrupted = True
        finally:
            self._teardown_pool(pool)
        # merge the workers' cache deltas into this process's memory tier
        if self.cache_dir is not None:
            delta: list[str] = []
            for res in results:
                if res is not None:
                    delta.extend(res.stored_fingerprints)
            self.cache.adopt(delta)
        return results
