"""Incremental re-analysis: re-summarize only what an edit touched.

Because cache keys are content-addressed *and* callee-transitive
(:func:`~repro.engine.cache.fingerprint_program`), invalidation is not a
separate mechanism: editing a routine changes its fingerprint and the
fingerprint of every transitive caller, so exactly those routines miss
the cache on the next run while everything else is served warm.

:class:`IncrementalEngine` adds the bookkeeping on top — it remembers
the fingerprints of the previous revision of each named source, so each
``analyze`` call can report *which* routines changed, which were
invalidated through a callee, and which were reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..dataflow.context import AnalysisOptions
from ..driver.panorama import CompilationResult, Panorama
from .cache import CachingHooks, SummaryCache


@dataclass
class IncrementalReport:
    """The invalidation report: what one re-analysis actually had to do.

    Public contract of the watch path — the analysis daemon's
    ``POST /v1/watch`` responses serialize this via :meth:`to_dict`, and
    :func:`diff_revisions` builds it without touching engine internals.
    """

    name: str
    #: routines whose own normalized source changed since last revision
    changed: list[str] = field(default_factory=list)
    #: routines invalidated only through a (transitive) callee change
    invalidated: list[str] = field(default_factory=list)
    #: routines served from the summary cache
    reused: list[str] = field(default_factory=list)
    #: routines whose summaries were (re)computed this run
    computed: list[str] = field(default_factory=list)
    #: fingerprints by routine, the new revision
    fingerprints: dict[str, str] = field(default_factory=dict)

    def affected(self) -> list[str]:
        """Routines whose verdicts may have moved since last revision:
        the union of own-source changes and callee invalidations."""
        return sorted(set(self.changed) | set(self.invalidated))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (fingerprints are dropped: they are cache
        keys, not part of the watch protocol)."""
        return {
            "name": self.name,
            "changed": list(self.changed),
            "invalidated": list(self.invalidated),
            "reused": list(self.reused),
            "computed": list(self.computed),
        }

    def summary_line(self) -> str:
        return (
            f"{self.name}: {len(self.changed)} changed, "
            f"{len(self.invalidated)} invalidated via callees, "
            f"{len(self.reused)} reused from cache"
        )


def diff_revisions(
    name: str,
    previous: Mapping[str, str],
    hooks: CachingHooks,
) -> IncrementalReport:
    """Build the invalidation report for one re-analysis.

    *previous* maps routine → normalized-source hash of the prior
    revision (empty on the first revision); *hooks* is the
    :class:`~repro.engine.cache.CachingHooks` instance that rode the
    just-finished compile (its ``unit_hashes``/``callees``/``reused``/
    ``computed`` fields describe the new revision).
    """
    report = IncrementalReport(
        name=name,
        reused=sorted(hooks.reused),
        computed=sorted(hooks.computed),
        fingerprints=dict(hooks.fingerprints),
    )
    if not previous:
        # first revision: everything is "changed" by definition
        report.changed = sorted(hooks.fingerprints)
        return report
    own_changed = {
        routine
        for routine, h in hooks.unit_hashes.items()
        if previous.get(routine) != h
    }
    # propagate to transitive callers: those summaries are stale even
    # though their own source is untouched (the callee-transitive
    # fingerprint already made them cache misses)
    invalidated: set[str] = set()
    frontier = set(own_changed)
    while frontier:
        nxt: set[str] = set()
        for routine, callees in hooks.callees.items():
            if routine in own_changed or routine in invalidated:
                continue
            if callees & frontier:
                nxt.add(routine)
        invalidated |= nxt
        frontier = nxt
    report.changed = sorted(own_changed)
    report.invalidated = sorted(invalidated)
    return report


@dataclass
class IncrementalResult:
    """The full pipeline result plus the incremental bookkeeping."""

    result: CompilationResult
    report: IncrementalReport


class IncrementalEngine:
    """Re-analyze evolving sources against a persistent summary cache."""

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        cache: SummaryCache | None = None,
        cache_dir=None,
        run_machine_model: bool = True,
    ) -> None:
        self.options = options or AnalysisOptions()
        self.cache = cache if cache is not None else SummaryCache(cache_dir)
        self.run_machine_model = run_machine_model
        #: previous revision fingerprints, keyed by source name
        self._previous: dict[str, dict[str, str]] = {}

    def analyze(
        self,
        source: str,
        name: str = "<source>",
        sizes: Mapping[str, int] | None = None,
    ) -> IncrementalResult:
        """Analyze one (possibly edited) source, reusing cached summaries."""
        hooks = CachingHooks(self.cache)
        panorama = Panorama(
            self.options,
            sizes=sizes,
            run_machine_model=self.run_machine_model,
            hooks=hooks,
        )
        result = panorama.compile(source)
        report = self.diff_report(name, hooks)
        self._previous[name] = dict(hooks.unit_hashes)
        return IncrementalResult(result=result, report=report)

    def diff_report(self, name: str, hooks: CachingHooks) -> IncrementalReport:
        """Invalidation report of *hooks* against the remembered revision
        of *name* (does not advance the remembered revision)."""
        return diff_revisions(name, self._previous.get(name, {}), hooks)

    #: kept for callers written against the pre-public spelling
    _diff_report = diff_report
