"""Content-addressed, two-tier cache of per-routine analysis summaries.

The unit of caching is one *routine* (program unit): its interprocedural
(MOD, UE) :class:`~repro.dataflow.summary.Summary` plus every per-loop
:class:`~repro.dataflow.context.LoopSummaryRecord` computed inside it.

Cache keys are **fingerprints**: a SHA-256 over

* the routine's *normalized* source (the AST unparsed back to text, so
  whitespace/comment/case differences do not defeat the cache),
* the fingerprints of its transitive callees (the HSG call edges make
  interprocedural invalidation exact — editing a callee changes every
  transitive caller's fingerprint, and nothing else's),
* the :class:`~repro.dataflow.context.AnalysisOptions` tuple (an ablation
  run can never be served summaries computed with different techniques),
* a format version (bumping it orphans old pickles instead of unpickling
  incompatible layouts).

Storage is two tiers: a bounded in-memory LRU dict in front of a
pluggable durable :class:`~repro.engine.backends.CacheBackend` — the
classic pickle-directory tier (``disk``) or a multi-process SQLite tier
(``shared``) that whole fleets of engine instances read and write.  Both
are safe to share between concurrent worker processes, and both speak
the same fingerprint keyspace, so switching backends never invalidates
summaries.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from ..dataflow.analyzer import LoopKey
from ..dataflow.context import AnalysisOptions, LoopSummaryRecord
from ..dataflow.summary import Summary
from ..fortran.ast_nodes import Program
from ..fortran.callgraph import CallGraph
from ..fortran.printers import unparse_unit
from .backends import CacheBackend, DiskBackend, make_backend

#: bump when RoutineCacheEntry or the pickled analysis types change shape
#: (v2: symbolic terms/exprs/relations are hash-consed and pickle through
#: their interning constructors — v1 pickles carried raw slot state;
#: v3: disk entries are a checksummed container — magic, SHA-256 of the
#: payload, then the payload pickle — so torn/corrupt files are detected
#: before unpickling and quarantined instead of trusted;
#: v4: the frontier pass (content facts + scan recognition) changes
#: summaries through derived index-array forms, and its toggle joined
#: options_key — stale v3 verdicts must not be served either way)
CACHE_FORMAT_VERSION = 4

#: on-disk container magic; the digest that follows covers the payload
DISK_MAGIC = b"PANC\x03\n"
_DIGEST_LEN = hashlib.sha256().digest_size


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #


def options_key(options: AnalysisOptions) -> str:
    """Stable text form of the analysis options, for fingerprinting."""
    forms = ";".join(
        f"{name}={expr}" for name, expr in sorted(
            options.index_array_forms, key=lambda p: p[0]
        )
    )
    return (
        f"T1={options.symbolic}|T2={options.if_conditions}"
        f"|T3={options.interprocedural}|FM={options.use_fm}"
        f"|FR={options.frontier}|IA={forms}"
        # budgets change results (exhaustion degrades summaries), so a
        # budgeted run must never share fingerprints with an unlimited one
        f"|Bms={options.budget_ms}|Bst={options.budget_steps}"
    )


def unit_source_hash(program: Program, name: str) -> str:
    """SHA-256 of one routine's normalized (unparsed) source alone."""
    return hashlib.sha256(unparse_unit(program.unit(name)).encode()).hexdigest()


def fingerprint_program(
    program: Program, call_graph: CallGraph, options: AnalysisOptions
) -> dict[str, str]:
    """Per-routine fingerprints, callee-transitive (bottom-up order)."""
    opts = options_key(options)
    fps: dict[str, str] = {}
    for name in call_graph.order:
        h = hashlib.sha256()
        h.update(f"panorama-summary-v{CACHE_FORMAT_VERSION}\n".encode())
        h.update(opts.encode())
        h.update(b"\n--unit--\n")
        h.update(unit_source_hash(program, name).encode())
        for callee in sorted(call_graph.calls(name)):
            h.update(f"\n--callee {callee}--\n".encode())
            h.update(fps[callee].encode())
        fps[name] = h.hexdigest()
    return fps


# --------------------------------------------------------------------------- #
# entries and statistics
# --------------------------------------------------------------------------- #


@dataclass
class RoutineCacheEntry:
    """Everything cached for one routine under one fingerprint."""

    fingerprint: str
    routine: str
    summary: Optional[Summary] = None
    #: stable-keyed loop records (see SummaryAnalyzer.loop_key)
    loop_records: dict[LoopKey, LoopSummaryRecord] = field(default_factory=dict)

    def merge(self, other: "RoutineCacheEntry") -> "RoutineCacheEntry":
        """Combine two entries for the same fingerprint (union of records)."""
        if self.summary is None:
            self.summary = other.summary
        self.loop_records.update(other.loop_records)
        return self


@dataclass
class CacheStats:
    """Counters exported through the engine telemetry."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    disk_errors: int = 0
    quarantined: int = 0
    #: backend-tier counters: hits/misses served by a *shared* (multi-
    #: process) backend, and writer-contention retries it absorbed
    shared_hits: int = 0
    shared_misses: int = 0
    contention_retries: int = 0
    #: quarantine entries dropped by the oldest-first growth cap
    quarantine_evicted: int = 0
    #: circuit-breaker events around the durable tier (see
    #: repro.resilience.breaker): trips into local-only degraded mode,
    #: recoveries out of it, and operations short-circuited while open
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    breaker_skipped: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.stores += other.stores
        self.evictions += other.evictions
        self.disk_errors += other.disk_errors
        self.quarantined += other.quarantined
        self.shared_hits += other.shared_hits
        self.shared_misses += other.shared_misses
        self.contention_retries += other.contention_retries
        self.quarantine_evicted += other.quarantine_evicted
        self.breaker_trips += other.breaker_trips
        self.breaker_recoveries += other.breaker_recoveries
        self.breaker_skipped += other.breaker_skipped

    def copy(self) -> "CacheStats":
        return CacheStats(**self.as_dict())

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after the *since* snapshot (per-item
        attribution when several items share one cache instance)."""
        ours = self.as_dict()
        return CacheStats(
            **{key: ours[key] - value for key, value in since.as_dict().items()}
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
            "quarantined": self.quarantined,
            "shared_hits": self.shared_hits,
            "shared_misses": self.shared_misses,
            "contention_retries": self.contention_retries,
            "quarantine_evicted": self.quarantine_evicted,
            "breaker_trips": self.breaker_trips,
            "breaker_recoveries": self.breaker_recoveries,
            "breaker_skipped": self.breaker_skipped,
        }


# --------------------------------------------------------------------------- #
# the two-tier store
# --------------------------------------------------------------------------- #


class SummaryCache:
    """In-memory LRU over an optional durable :class:`CacheBackend`.

    With ``cache_dir=None`` the cache is memory-only (useful for tests
    and single-process warm reruns).  With a directory, *backend*
    selects the durable tier: ``"disk"`` (pickle files, the default),
    ``"shared"`` (multi-process SQLite), an already-built
    :class:`CacheBackend` instance, or None to defer to
    ``$PANORAMA_CACHE_BACKEND``.
    """

    def __init__(
        self,
        cache_dir=None,
        max_memory_entries: int = 512,
        backend: Union[str, CacheBackend, None] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = max(1, max_memory_entries)
        self._memory: OrderedDict[str, RoutineCacheEntry] = OrderedDict()
        self.stats = CacheStats()
        if backend is None or isinstance(backend, str):
            self.backend = make_backend(backend, cache_dir, self.stats)
        else:
            self.backend = backend
            backend.bind_stats(self.stats)

    @property
    def backend_name(self) -> str:
        """The active durable tier: ``"memory"``/``"disk"``/``"shared"``."""
        return self.backend.name if self.backend is not None else "memory"

    # -- lookup -------------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[RoutineCacheEntry]:
        """The cached entry, consulting memory then the backend; None on
        miss."""
        entry = self._memory.get(fingerprint)
        if entry is not None:
            self._memory.move_to_end(fingerprint)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return entry
        entry = self.backend.get(fingerprint) if self.backend else None
        if entry is not None:
            self._remember(fingerprint, entry)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return entry
        self.stats.misses += 1
        return None

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        return self.backend is not None and self.backend.contains(fingerprint)

    def __len__(self) -> int:
        return len(self._memory)

    # -- store --------------------------------------------------------------------

    def put(self, entry: RoutineCacheEntry) -> None:
        """Store an entry under its fingerprint (memory + backend)."""
        existing = self._memory.get(entry.fingerprint)
        if existing is not None:
            entry = existing.merge(entry)
        self._remember(entry.fingerprint, entry)
        self.stats.stores += 1
        if self.backend is not None:
            self.backend.put(entry)

    def adopt(self, fingerprints: Iterable[str]) -> int:
        """Prime the memory tier with entries another process wrote to the
        shared durable tier (the batch engine's cache-delta merge).
        Returns the number of entries actually loaded."""
        if self.backend is None:
            return 0
        loaded = 0
        for fp in fingerprints:
            if fp in self._memory:
                continue
            entry = self.backend.get(fp)
            if entry is not None:
                self._remember(fp, entry)
                loaded += 1
        return loaded

    def clear_memory(self) -> None:
        """Drop the memory tier (durable entries survive)."""
        self._memory.clear()

    def close(self) -> None:
        """Release backend handles (safe to keep using: they reopen)."""
        if self.backend is not None:
            self.backend.close()

    # -- internals ----------------------------------------------------------------

    def _remember(self, fingerprint: str, entry: RoutineCacheEntry) -> None:
        self._memory[fingerprint] = entry
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, fingerprint: str) -> Optional[Path]:
        """Disk-tier file of one fingerprint (None off the disk backend);
        kept because tests and ops tooling reach for the raw file."""
        if isinstance(self.backend, DiskBackend):
            return self.backend.path(fingerprint)
        return None


# --------------------------------------------------------------------------- #
# pipeline binding
# --------------------------------------------------------------------------- #


class CachingHooks:
    """:class:`~repro.driver.panorama.PipelineHooks` implementation that
    serves cached summaries into the analyzer and harvests fresh ones.

    One instance covers one ``Panorama.compile`` call; after ``finish``
    the instance exposes what happened (``fingerprints``, ``reused``,
    ``computed``, ``stored_fingerprints``) for telemetry and the batch
    engine's cache-delta merge.
    """

    def __init__(self, cache: SummaryCache) -> None:
        self.cache = cache
        self.fingerprints: dict[str, str] = {}
        #: call edges of the compiled program (for incremental diffing)
        self.callees: dict[str, frozenset[str]] = {}
        #: per-routine normalized-source hashes, callee-independent
        self.unit_hashes: dict[str, str] = {}
        #: routines served (at least partly) from the cache
        self.reused: set[str] = set()
        #: routines whose summaries had to be computed this run
        self.computed: set[str] = set()
        #: fingerprints written to the cache by this compile (the delta)
        self.stored_fingerprints: list[str] = []
        #: True when step budgets force the hooks inert (see attach)
        self._bypass = False
        self._entries: dict[str, RoutineCacheEntry] = {}

    # PipelineHooks interface ------------------------------------------------------

    def attach(self, analyzer, hsg) -> None:
        self.fingerprints = fingerprint_program(
            hsg.analyzed.program, hsg.call_graph, analyzer.options
        )
        self.callees = {
            name: hsg.call_graph.calls(name) for name in self.fingerprints
        }
        self.unit_hashes = {
            name: unit_source_hash(hsg.analyzed.program, name)
            for name in self.fingerprints
        }
        # Step budgets charge per analysis step, so a served summary
        # changes *where* exhaustion lands — warm and cold runs could
        # degrade different loops and verdicts would drift.  Under
        # budget_steps the hooks go inert: fingerprints still flow (for
        # incremental diffing) but nothing is served or stored, making
        # warm == cold by construction.
        self._bypass = analyzer.options.budget_steps is not None
        if self._bypass:
            self._entries = {}
            self.reused = set()
            return
        entries: dict[str, RoutineCacheEntry] = {}
        for routine, fp in self.fingerprints.items():
            entry = self.cache.get(fp)
            if entry is not None:
                entries[routine] = entry
        self._entries = entries
        self.reused = set(entries)

        def summary_provider(unit_name: str):
            entry = entries.get(unit_name)
            return entry.summary if entry is not None else None

        def loop_record_provider(key):
            entry = entries.get(key[0])
            return entry.loop_records.get(key) if entry is not None else None

        analyzer.summary_provider = summary_provider
        analyzer.loop_record_provider = loop_record_provider

    def finish(self, result) -> None:
        analyzer = result.analyzer
        if self._bypass:
            return
        if analyzer.stats.budget_degradations:
            # a wall-clock budget fired mid-analysis: these summaries are
            # conservative placeholders, not facts — storing them would
            # poison every future warm run with degraded verdicts
            return
        self._force_provider_summaries(analyzer)
        if analyzer.stats.budget_degradations:
            return  # the forced computation itself ran out of budget
        summaries = analyzer.export_routine_summaries()
        by_routine: dict[str, dict] = {}
        for key, record in analyzer.export_loop_records().items():
            by_routine.setdefault(key[0], {})[key] = record
        for routine, fp in self.fingerprints.items():
            new_records = {
                key: record
                for key, record in by_routine.get(routine, {}).items()
                if key not in analyzer.provided_loop_records
            }
            summary = summaries.get(routine)
            fresh_summary = (
                summary is not None
                and routine not in analyzer.provided_summaries
            )
            if not new_records and not fresh_summary:
                continue  # everything this compile knows came from the cache
            self.computed.add(routine)
            self.cache.put(
                RoutineCacheEntry(
                    fingerprint=fp,
                    routine=routine,
                    summary=summary,
                    loop_records=dict(by_routine.get(routine, {})),
                )
            )
            self.stored_fingerprints.append(fp)

    def _force_provider_summaries(self, analyzer) -> None:
        """Materialize summaries of caller-less routines.

        Summaries are normally computed on demand — when some in-item
        caller needs SUM_call — so a routine nobody calls (a *library*
        item analyzed standalone, the unit of sharing in campaign
        corpora) would leave the compile with nothing cacheable.
        Computing it here turns every such item into a provider: the
        summary is context-independent, so any later item embedding the
        identical routine (identical fingerprint) starts warm.  Verdicts
        are unaffected — they were extracted before finish runs.
        """
        called: set[str] = set()
        for callees in self.callees.values():
            called |= callees
        for unit in analyzer.hsg.analyzed.program.units:
            if unit.kind == "program" or unit.name in called:
                continue
            try:
                analyzer.routine_summary(unit.name)
            except Exception:
                pass  # an uncomputable summary is simply not cached
