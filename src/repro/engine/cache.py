"""Content-addressed, two-tier cache of per-routine analysis summaries.

The unit of caching is one *routine* (program unit): its interprocedural
(MOD, UE) :class:`~repro.dataflow.summary.Summary` plus every per-loop
:class:`~repro.dataflow.context.LoopSummaryRecord` computed inside it.

Cache keys are **fingerprints**: a SHA-256 over

* the routine's *normalized* source (the AST unparsed back to text, so
  whitespace/comment/case differences do not defeat the cache),
* the fingerprints of its transitive callees (the HSG call edges make
  interprocedural invalidation exact — editing a callee changes every
  transitive caller's fingerprint, and nothing else's),
* the :class:`~repro.dataflow.context.AnalysisOptions` tuple (an ablation
  run can never be served summaries computed with different techniques),
* a format version (bumping it orphans old pickles instead of unpickling
  incompatible layouts).

Storage is two tiers: a bounded in-memory LRU dict in front of an
on-disk directory of pickle files named by fingerprint.  The disk tier is
safe to share between concurrent worker processes — entries are written
via temp-file + atomic rename, and content addressing makes racing
writers idempotent (both write identical bytes).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..dataflow.analyzer import LoopKey
from ..dataflow.context import AnalysisOptions, LoopSummaryRecord
from ..dataflow.summary import Summary
from ..fortran.ast_nodes import Program
from ..fortran.callgraph import CallGraph
from ..fortran.printers import unparse_unit
from ..resilience import faults

#: bump when RoutineCacheEntry or the pickled analysis types change shape
#: (v2: symbolic terms/exprs/relations are hash-consed and pickle through
#: their interning constructors — v1 pickles carried raw slot state;
#: v3: disk entries are a checksummed container — magic, SHA-256 of the
#: payload, then the payload pickle — so torn/corrupt files are detected
#: before unpickling and quarantined instead of trusted)
CACHE_FORMAT_VERSION = 3

#: on-disk container magic; the digest that follows covers the payload
DISK_MAGIC = b"PANC\x03\n"
_DIGEST_LEN = hashlib.sha256().digest_size


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #


def options_key(options: AnalysisOptions) -> str:
    """Stable text form of the analysis options, for fingerprinting."""
    forms = ";".join(
        f"{name}={expr}" for name, expr in sorted(
            options.index_array_forms, key=lambda p: p[0]
        )
    )
    return (
        f"T1={options.symbolic}|T2={options.if_conditions}"
        f"|T3={options.interprocedural}|FM={options.use_fm}|IA={forms}"
        # budgets change results (exhaustion degrades summaries), so a
        # budgeted run must never share fingerprints with an unlimited one
        f"|Bms={options.budget_ms}|Bst={options.budget_steps}"
    )


def unit_source_hash(program: Program, name: str) -> str:
    """SHA-256 of one routine's normalized (unparsed) source alone."""
    return hashlib.sha256(unparse_unit(program.unit(name)).encode()).hexdigest()


def fingerprint_program(
    program: Program, call_graph: CallGraph, options: AnalysisOptions
) -> dict[str, str]:
    """Per-routine fingerprints, callee-transitive (bottom-up order)."""
    opts = options_key(options)
    fps: dict[str, str] = {}
    for name in call_graph.order:
        h = hashlib.sha256()
        h.update(f"panorama-summary-v{CACHE_FORMAT_VERSION}\n".encode())
        h.update(opts.encode())
        h.update(b"\n--unit--\n")
        h.update(unit_source_hash(program, name).encode())
        for callee in sorted(call_graph.calls(name)):
            h.update(f"\n--callee {callee}--\n".encode())
            h.update(fps[callee].encode())
        fps[name] = h.hexdigest()
    return fps


# --------------------------------------------------------------------------- #
# entries and statistics
# --------------------------------------------------------------------------- #


@dataclass
class RoutineCacheEntry:
    """Everything cached for one routine under one fingerprint."""

    fingerprint: str
    routine: str
    summary: Optional[Summary] = None
    #: stable-keyed loop records (see SummaryAnalyzer.loop_key)
    loop_records: dict[LoopKey, LoopSummaryRecord] = field(default_factory=dict)

    def merge(self, other: "RoutineCacheEntry") -> "RoutineCacheEntry":
        """Combine two entries for the same fingerprint (union of records)."""
        if self.summary is None:
            self.summary = other.summary
        self.loop_records.update(other.loop_records)
        return self


@dataclass
class CacheStats:
    """Counters exported through the engine telemetry."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    disk_errors: int = 0
    quarantined: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.stores += other.stores
        self.evictions += other.evictions
        self.disk_errors += other.disk_errors
        self.quarantined += other.quarantined

    def copy(self) -> "CacheStats":
        return CacheStats(**self.as_dict())

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after the *since* snapshot (per-item
        attribution when several items share one cache instance)."""
        ours = self.as_dict()
        return CacheStats(
            **{key: ours[key] - value for key, value in since.as_dict().items()}
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
            "quarantined": self.quarantined,
        }


# --------------------------------------------------------------------------- #
# the two-tier store
# --------------------------------------------------------------------------- #


class SummaryCache:
    """In-memory LRU over an optional on-disk pickle directory.

    With ``cache_dir=None`` the cache is memory-only (useful for tests
    and single-process warm reruns).  Disk entries are sharded by the
    first two fingerprint characters: ``<dir>/ab/abcdef….pkl``.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        max_memory_entries: int = 512,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = max(1, max_memory_entries)
        self._memory: OrderedDict[str, RoutineCacheEntry] = OrderedDict()
        self.stats = CacheStats()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup -------------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[RoutineCacheEntry]:
        """The cached entry, consulting memory then disk; None on miss."""
        entry = self._memory.get(fingerprint)
        if entry is not None:
            self._memory.move_to_end(fingerprint)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return entry
        entry = self._load_from_disk(fingerprint)
        if entry is not None:
            self._remember(fingerprint, entry)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return entry
        self.stats.misses += 1
        return None

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        path = self._path(fingerprint)
        return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self._memory)

    # -- store --------------------------------------------------------------------

    def put(self, entry: RoutineCacheEntry) -> None:
        """Store an entry under its fingerprint (memory + disk)."""
        existing = self._memory.get(entry.fingerprint)
        if existing is not None:
            entry = existing.merge(entry)
        self._remember(entry.fingerprint, entry)
        self.stats.stores += 1
        self._write_to_disk(entry)

    def adopt(self, fingerprints: Iterable[str]) -> int:
        """Prime the memory tier with entries another process wrote to the
        shared disk tier (the batch engine's cache-delta merge).  Returns
        the number of entries actually loaded."""
        loaded = 0
        for fp in fingerprints:
            if fp in self._memory:
                continue
            entry = self._load_from_disk(fp)
            if entry is not None:
                self._remember(fp, entry)
                loaded += 1
        return loaded

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive)."""
        self._memory.clear()

    # -- internals ----------------------------------------------------------------

    def _remember(self, fingerprint: str, entry: RoutineCacheEntry) -> None:
        self._memory[fingerprint] = entry
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.pkl"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad disk entry aside (``<dir>/quarantine/``) so it is
        never re-read, re-trusted, or silently overwritten evidence."""
        self.stats.disk_errors += 1
        self.stats.quarantined += 1
        if self.cache_dir is None:
            return
        try:
            qdir = self.cache_dir / "quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{path.name}.{reason}")
        except OSError:
            # even quarantining can fail (read-only dir): last resort is
            # deleting the bad entry so it cannot poison later reads
            try:
                path.unlink()
            except OSError:
                pass

    def _load_from_disk(self, fingerprint: str) -> Optional[RoutineCacheEntry]:
        path = self._path(fingerprint)
        if path is None or not path.exists():
            return None
        if faults.should_fire("cache.read"):
            raise OSError(f"injected fault: cache.read {fingerprint[:12]}")
        if faults.should_fire("cache.corrupt"):
            # simulate a torn write: clobber the container header in place
            # so the genuine corruption-detection path runs
            with path.open("r+b") as fh:
                fh.write(b"\x00" * len(DISK_MAGIC))
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.disk_errors += 1
            return None
        if len(data) < len(DISK_MAGIC) + _DIGEST_LEN or not data.startswith(
            DISK_MAGIC
        ):
            self._quarantine(path, "badmagic")
            return None
        digest = data[len(DISK_MAGIC) : len(DISK_MAGIC) + _DIGEST_LEN]
        payload = data[len(DISK_MAGIC) + _DIGEST_LEN :]
        if hashlib.sha256(payload).digest() != digest:
            self._quarantine(path, "checksum")
            return None
        try:
            version, entry = pickle.loads(payload)
        except Exception:
            self._quarantine(path, "unpickle")
            return None
        if version != CACHE_FORMAT_VERSION or not isinstance(
            entry, RoutineCacheEntry
        ):
            self._quarantine(path, "version")
            return None
        return entry

    def _write_to_disk(self, entry: RoutineCacheEntry) -> None:
        path = self._path(entry.fingerprint)
        if path is None:
            return
        try:
            payload = pickle.dumps((CACHE_FORMAT_VERSION, entry))
            digest = hashlib.sha256(payload).digest()
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=entry.fingerprint[:8], suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(DISK_MAGIC)
                    fh.write(digest)
                    fh.write(payload)
                os.replace(tmp, path)  # atomic on POSIX: racing writers agree
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            self.stats.disk_errors += 1


# --------------------------------------------------------------------------- #
# pipeline binding
# --------------------------------------------------------------------------- #


class CachingHooks:
    """:class:`~repro.driver.panorama.PipelineHooks` implementation that
    serves cached summaries into the analyzer and harvests fresh ones.

    One instance covers one ``Panorama.compile`` call; after ``finish``
    the instance exposes what happened (``fingerprints``, ``reused``,
    ``computed``, ``stored_fingerprints``) for telemetry and the batch
    engine's cache-delta merge.
    """

    def __init__(self, cache: SummaryCache) -> None:
        self.cache = cache
        self.fingerprints: dict[str, str] = {}
        #: call edges of the compiled program (for incremental diffing)
        self.callees: dict[str, frozenset[str]] = {}
        #: per-routine normalized-source hashes, callee-independent
        self.unit_hashes: dict[str, str] = {}
        #: routines served (at least partly) from the cache
        self.reused: set[str] = set()
        #: routines whose summaries had to be computed this run
        self.computed: set[str] = set()
        #: fingerprints written to the cache by this compile (the delta)
        self.stored_fingerprints: list[str] = []

    # PipelineHooks interface ------------------------------------------------------

    def attach(self, analyzer, hsg) -> None:
        self.fingerprints = fingerprint_program(
            hsg.analyzed.program, hsg.call_graph, analyzer.options
        )
        self.callees = {
            name: hsg.call_graph.calls(name) for name in self.fingerprints
        }
        self.unit_hashes = {
            name: unit_source_hash(hsg.analyzed.program, name)
            for name in self.fingerprints
        }
        entries: dict[str, RoutineCacheEntry] = {}
        for routine, fp in self.fingerprints.items():
            entry = self.cache.get(fp)
            if entry is not None:
                entries[routine] = entry
        self._entries = entries
        self.reused = set(entries)

        def summary_provider(unit_name: str):
            entry = entries.get(unit_name)
            return entry.summary if entry is not None else None

        def loop_record_provider(key):
            entry = entries.get(key[0])
            return entry.loop_records.get(key) if entry is not None else None

        analyzer.summary_provider = summary_provider
        analyzer.loop_record_provider = loop_record_provider

    def finish(self, result) -> None:
        analyzer = result.analyzer
        summaries = analyzer.export_routine_summaries()
        by_routine: dict[str, dict] = {}
        for key, record in analyzer.export_loop_records().items():
            by_routine.setdefault(key[0], {})[key] = record
        for routine, fp in self.fingerprints.items():
            new_records = {
                key: record
                for key, record in by_routine.get(routine, {}).items()
                if key not in analyzer.provided_loop_records
            }
            summary = summaries.get(routine)
            fresh_summary = (
                summary is not None
                and routine not in analyzer.provided_summaries
            )
            if not new_records and not fresh_summary:
                continue  # everything this compile knows came from the cache
            self.computed.add(routine)
            self.cache.put(
                RoutineCacheEntry(
                    fingerprint=fp,
                    routine=routine,
                    summary=summary,
                    loop_records=dict(by_routine.get(routine, {})),
                )
            )
            self.stored_fingerprints.append(fp)
