"""Durable run ledger: append-only JSONL journal of batch progress.

A crash must never cost a fleet its progress *attribution*: a campaign
shard that dies at item 9,800 of 10,000 already has 9,800 verdicts in
the durable cache tier, but without a journal nobody can prove which
items finished, so the whole shard re-runs.  The ledger is that journal
— crash-only by construction:

* **append-only JSONL**, one record per line, flushed per line.  There
  is no in-place mutation and no index; the only failure mode a crash
  can produce is a *torn final line*, which replay tolerates (an
  undecodable line is counted and skipped — losing a ``done`` record
  merely re-runs that item, which is always safe because analysis is a
  pure function of the source).
* an **identity header** binds the ledger to one exact run: options
  fingerprint (:func:`~repro.engine.cache.options_key`), audit/machine
  flags, an order-sensitive digest over every item's name and source,
  and — for campaigns — the ``(seed, GENERATOR_VERSION, count, shard)``
  provenance.  ``--resume`` refuses a ledger whose header mismatches
  the requested run (:class:`LedgerMismatch`): resuming someone else's
  journal would silently serve wrong verdicts.
* **item transitions**: ``dispatched`` when an attempt starts, then
  ``done`` (with the full verdict payload, its canonical digest, and
  the cache-delta fingerprints) or ``failed``/``quarantined``.  Replay
  classifies each item by its *last* decodable record — ``done`` items
  are served straight from the ledger on resume; ``dispatched``-only
  (in-flight at the crash) and failed items are re-dispatched.

The ``ledger.write`` fault site (``PANORAMA_FAULTS``) simulates the torn
write: it emits half a record with no newline and wedges the writer, so
the chaos suite can prove replay survives exactly the corruption a real
crash produces.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from ..resilience import faults
from .cache import options_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataflow.context import AnalysisOptions
    from .batch import BatchItem, BatchItemResult

#: bump when the record schema changes shape (replay refuses newer
#: versions rather than guessing at their semantics)
LEDGER_VERSION = 1


class LedgerMismatch(ValueError):
    """The ledger's identity header does not describe the requested run."""


def _canonical(obj: Any) -> str:
    """Canonical JSON text (sorted keys, no whitespace) for digesting."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of a verdict payload.

    Stored beside each ``done`` record and re-checked on replay, so a
    corrupted-but-decodable record is detected and re-run instead of
    trusted.  JSON round-trips floats exactly (shortest-repr), so the
    digest of a replayed payload equals the digest of the original.
    """
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def items_digest(items: Sequence["BatchItem"]) -> str:
    """Order-sensitive digest over every item's name, source, and sizes.

    Any edit to any source — or a reorder — changes the digest, so a
    resume against different inputs is refused instead of mixing ledger
    verdicts computed from other text into this run's report.
    """
    h = hashlib.sha256()
    for item in items:
        h.update(item.name.encode())
        h.update(b"\x00")
        h.update(hashlib.sha256(item.source.encode()).digest())
        h.update(b"\x00")
        h.update(_canonical(sorted(item.sizes.items())).encode())
        h.update(b"\x01")
    return h.hexdigest()


def run_identity(
    kind: str,
    items: Sequence["BatchItem"],
    options: "AnalysisOptions",
    audit: bool = False,
    machine: bool = True,
    campaign: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """The identity header for one run: everything that shapes verdicts.

    *kind* is ``"batch"`` or ``"campaign"``; *campaign* carries the
    generator provenance (seed, generator_version, count, shard) for
    campaign runs.  Deliberately excluded: jobs, cache dir/backend,
    timeouts — those change performance, never verdicts, and a resume
    under different infrastructure must be allowed.
    """
    return {
        "kind": kind,
        "options": options_key(options),
        "audit": bool(audit),
        "machine": bool(machine),
        "items": len(items),
        "items_digest": items_digest(items),
        "campaign": dict(campaign) if campaign else {},
    }


def verify_identity(
    header: Mapping[str, Any], identity: Mapping[str, Any]
) -> None:
    """Raise :class:`LedgerMismatch` unless *header* describes *identity*."""
    if int(header.get("ledger_version", -1)) != LEDGER_VERSION:
        raise LedgerMismatch(
            f"ledger version {header.get('ledger_version')!r} != "
            f"{LEDGER_VERSION} (written by an incompatible build)"
        )
    recorded = header.get("identity", {})
    mismatched = sorted(
        key
        for key in set(recorded) | set(identity)
        if recorded.get(key) != identity.get(key)
    )
    if mismatched:
        raise LedgerMismatch(
            "ledger identity mismatch on "
            + ", ".join(
                f"{key} (ledger {recorded.get(key)!r} != run "
                f"{identity.get(key)!r})"
                for key in mismatched
            )
        )


class LedgerWriter:
    """Append-only writer for one run's journal.

    ``resume=True`` appends to an existing ledger (a ``resume`` marker
    first, so forensics can see where each process's records start);
    otherwise the file is created fresh with the identity header.  Each
    record is one flushed line — after any ``os._exit`` the kernel
    already holds every completed line, and the worst case is one torn
    final line, which replay tolerates.
    """

    def __init__(
        self,
        path: str | Path,
        identity: Mapping[str, Any],
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.identity = dict(identity)
        #: set by the ledger.write fault: a torn line must stay final,
        #: so the wedged writer drops every subsequent record
        self._broken = False
        self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")
        if resume:
            self._record({"type": "resume", "pid": os.getpid()})
        else:
            self._record(
                {
                    "type": "header",
                    "ledger_version": LEDGER_VERSION,
                    "identity": self.identity,
                    "pid": os.getpid(),
                }
            )

    def _record(self, record: Mapping[str, Any]) -> None:
        if self._broken:
            return
        line = _canonical(record)
        if faults.should_fire("ledger.write", key=record.get("type")):
            # simulate the crash-mid-write: half a record, no newline,
            # and the writer wedges so the torn line stays final
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            self._broken = True
            return
        self._fh.write(line + "\n")
        self._fh.flush()

    # -- item transitions ---------------------------------------------------------

    def record_dispatched(self, index: int, name: str, attempt: int) -> None:
        self._record(
            {
                "type": "item",
                "state": "dispatched",
                "index": index,
                "name": name,
                "attempt": attempt,
            }
        )

    def record_done(self, index: int, result: "BatchItemResult") -> None:
        self._record(
            {
                "type": "item",
                "state": "done",
                "index": index,
                "name": result.name,
                "attempt": result.attempts,
                "payload": result.payload,
                "digest": payload_digest(result.payload),
                "stored_fingerprints": list(result.stored_fingerprints),
                "reused_routines": list(result.reused_routines),
                "computed_routines": list(result.computed_routines),
                "cache_stats": result.cache_stats.as_dict(),
            }
        )

    def record_failed(self, index: int, result: "BatchItemResult") -> None:
        self._record(
            {
                "type": "item",
                "state": "quarantined" if result.quarantined else "failed",
                "index": index,
                "name": result.name,
                "attempt": result.attempts,
                "error_kind": result.error_kind,
                # first line is enough to identify the failure on replay;
                # the full traceback lives in the run's stderr
                "error": (result.error or "").splitlines()[:1],
            }
        )

    def record_end(self, reason: str) -> None:
        """Terminal marker: ``complete`` or ``interrupted``."""
        self._record({"type": "end", "reason": reason})

    def close(self) -> None:
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            pass
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class LedgerReplay:
    """What a ledger says happened, classified per item index."""

    header: dict[str, Any] = field(default_factory=dict)
    #: index → its (verified) ``done`` record; resume serves these
    done: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: indexes whose last record is ``dispatched`` (in flight at crash)
    in_flight: set[int] = field(default_factory=set)
    #: index → its last ``failed``/``quarantined`` record
    failed: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: undecodable lines skipped (a crash leaves at most one, at EOF)
    torn_lines: int = 0
    #: decodable records dropped for failing verification (bad digest,
    #: unknown type) — each costs one re-run, never a wrong verdict
    invalid_records: int = 0
    #: terminal marker reason, or None when the run never wrote one
    ended: Optional[str] = None
    #: how many times a resume appended to this ledger
    resumes: int = 0

    @property
    def completed(self) -> int:
        return len(self.done)


def replay(path: str | Path) -> LedgerReplay:
    """Reconstruct run state from a (possibly torn) ledger.

    The last decodable record per item wins.  ``done`` records must
    carry a payload matching their digest; anything else undecodable or
    unverifiable demotes the item to "re-run it", which is always safe.
    Raises ``OSError`` when the file cannot be read and
    :class:`LedgerMismatch` when it has no decodable header at all.
    """
    out = LedgerReplay()
    saw_header = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                out.torn_lines += 1
                continue
            if not isinstance(record, dict):
                out.invalid_records += 1
                continue
            rtype = record.get("type")
            if rtype == "header":
                if not saw_header:
                    saw_header = True
                    out.header = record
                continue
            if rtype == "resume":
                out.resumes += 1
                out.ended = None  # the run continued past its end marker
                continue
            if rtype == "end":
                out.ended = record.get("reason")
                continue
            if rtype != "item":
                out.invalid_records += 1
                continue
            try:
                index = int(record.get("index"))
            except (TypeError, ValueError):
                out.invalid_records += 1
                continue
            state = record.get("state")
            if state == "dispatched":
                if index not in out.done:
                    out.in_flight.add(index)
                continue
            if state == "done":
                if payload_digest(record.get("payload")) != record.get(
                    "digest"
                ):
                    out.invalid_records += 1
                    continue
                out.done[index] = record
                out.in_flight.discard(index)
                out.failed.pop(index, None)
                continue
            if state in ("failed", "quarantined"):
                out.failed[index] = record
                out.in_flight.discard(index)
                continue
            out.invalid_records += 1
    if not saw_header:
        raise LedgerMismatch(f"{path}: no decodable ledger header")
    return out
