"""Conventional dependence tests (the paper's cheap pre-filter and the
classical baseline its symbolic analysis improves on)."""

from .banerjee import LoopBounds, banerjee_test, banerjee_test_dimension
from .ddg import PairResult, ScreenReport, ScreenVerdict, screen_loop
from .gcd import gcd_test, gcd_test_dimension
from .range_test import overlap_possible, siv_independent
from .subscript import (
    AffineForm,
    ArrayReference,
    affine_form,
    classify_pair,
    collect_references,
)

__all__ = [
    "AffineForm",
    "ArrayReference",
    "LoopBounds",
    "PairResult",
    "ScreenReport",
    "ScreenVerdict",
    "affine_form",
    "banerjee_test",
    "banerjee_test_dimension",
    "classify_pair",
    "collect_references",
    "gcd_test",
    "gcd_test_dimension",
    "overlap_possible",
    "screen_loop",
    "siv_independent",
]
