"""Subscript pair extraction for conventional dependence testing.

Conventional (memory-disambiguation) tests work on pairs of references to
the same array inside a loop nest.  This module collects the references,
normalizes subscripts to affine forms over the loop indices, and
classifies pairs (ZIV / SIV / MIV) for the numeric tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..dataflow.convert import ConversionContext, to_symexpr
from ..fortran.ast_nodes import Apply, Assign, Expr, IoStmt, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    IfConditionNode,
    LoopNode,
)
from ..perf.profiler import MISS, BoundedCache
from ..symbolic import SymExpr

#: (expr, indices) → AffineForm | None.  GCD and Banerjee both normalize
#: the same subscripts of the same pairs; expressions are interned so the
#: key is cheap.
_AFFINE_CACHE = BoundedCache("deptest.affine_form", maxsize=16384)


@dataclass(frozen=True)
class ArrayReference:
    array: str
    subscripts: tuple[Optional[SymExpr], ...]  # None = unanalyzable
    is_write: bool
    #: loop indices enclosing the reference (innermost last)
    nest: tuple[str, ...]

    def __str__(self) -> str:
        subs = ", ".join(str(s) if s is not None else "?" for s in self.subscripts)
        rw = "W" if self.is_write else "R"
        return f"{rw}:{self.array}({subs})"


@dataclass(frozen=True)
class AffineForm:
    """``sum coeff_k * index_k + const`` with symbolic-free coefficients.

    ``symbolic_rest`` holds the index-free symbolic remainder (e.g.
    ``jmax`` in ``A(jmax)``); the numeric tests treat it as an unknown
    additive constant.
    """

    coeffs: tuple[tuple[str, Fraction], ...]
    const: Fraction
    symbolic_rest: SymExpr

    def coeff(self, index: str) -> Fraction:
        """Coefficient of one loop index."""
        for name, value in self.coeffs:
            if name == index:
                return value
        return Fraction(0)

    def is_constant(self) -> bool:
        """No index terms and no symbolic rest?"""
        return not self.coeffs and self.symbolic_rest.is_zero()


def affine_form(expr: SymExpr, indices: tuple[str, ...]) -> Optional[AffineForm]:
    """Split an expression into index terms + constant + symbolic rest.

    Returns ``None`` when an index occurs non-linearly (e.g. ``i*i`` or
    ``i*n``) — the numeric tests then give up on the pair.
    """
    key = (expr, indices)
    cached = _AFFINE_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _AFFINE_CACHE.put(key, _affine_form_uncached(expr, indices))


def _affine_form_uncached(
    expr: SymExpr, indices: tuple[str, ...]
) -> Optional[AffineForm]:
    coeffs: dict[str, Fraction] = {}
    const = Fraction(0)
    rest = SymExpr()
    index_set = set(indices)
    for mono, coeff in expr.terms:
        vars_in = mono.variables()
        touched = vars_in & index_set
        if not touched:
            if mono.is_unit():
                const += coeff
            else:
                rest = rest + SymExpr({mono: coeff})
            continue
        if not mono.is_linear_var():
            return None  # index multiplied by something
        (name,) = vars_in
        coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
    return AffineForm(tuple(sorted(coeffs.items())), const, rest)


def collect_references(
    loop: LoopNode, ctx: ConversionContext
) -> list[ArrayReference]:
    """All array references textually inside *loop* (any nesting depth)."""
    out: list[ArrayReference] = []

    def expr_refs(expr: Expr, nest: tuple[str, ...], inner: ConversionContext) -> None:
        for node in expr.walk():
            if isinstance(node, Apply) and node.is_array:
                subs = tuple(to_symexpr(a, inner) for a in node.args)
                out.append(ArrayReference(node.name, subs, False, nest))

    def scan(graph: FlowGraph, nest: tuple[str, ...], inner: ConversionContext) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    if isinstance(stmt, Assign):
                        expr_refs(stmt.value, nest, inner)
                        target = stmt.target
                        if isinstance(target, Apply) and target.is_array:
                            for arg in target.args:
                                expr_refs(arg, nest, inner)
                            subs = tuple(to_symexpr(a, inner) for a in target.args)
                            out.append(
                                ArrayReference(target.name, subs, True, nest)
                            )
                    elif isinstance(stmt, IoStmt):
                        for item in stmt.items:
                            expr_refs(item, nest, inner)
            elif isinstance(node, IfConditionNode):
                expr_refs(node.cond, nest, inner)
            elif isinstance(node, LoopNode):
                deeper = inner.with_index(node.var)
                expr_refs(node.start, nest, inner)
                expr_refs(node.stop, nest, inner)
                if node.step is not None:
                    expr_refs(node.step, nest, inner)
                scan(node.body, nest + (node.var,), deeper)
            elif isinstance(node, CallNode):
                for arg in node.call.args:
                    expr_refs(arg, nest, inner)
                    if isinstance(arg, NameRef) and inner.table.is_array(arg.name):
                        rank = inner.table.arrays[arg.name].rank
                        unknown = tuple([None] * rank)
                        out.append(ArrayReference(arg.name, unknown, True, nest))
                        out.append(ArrayReference(arg.name, unknown, False, nest))
            elif isinstance(node, CondensedNode):
                for member in node.members:
                    if isinstance(member, BasicBlockNode):
                        for stmt in member.stmts:
                            if isinstance(stmt, Assign):
                                expr_refs(stmt.value, nest, inner)
                                expr_refs(stmt.target, nest, inner)
    base = ctx.with_index(loop.var)
    scan(loop.body, (loop.var,), base)
    return out


def classify_pair(
    a: ArrayReference, b: ArrayReference, indices: tuple[str, ...]
) -> str:
    """ZIV / SIV / MIV / unknown classification of one subscript pair."""
    if any(s is None for s in a.subscripts + b.subscripts):
        return "unknown"
    involved: set[str] = set()
    for s in a.subscripts + b.subscripts:
        assert s is not None
        involved |= {i for i in indices if s.contains(i)}
    if not involved:
        return "ziv"
    if len(involved) == 1:
        return "siv"
    return "miv"
