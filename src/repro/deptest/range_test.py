"""A symbolic range-overlap test (in the spirit of Blume & Eigenmann's
range test, cited by the paper as the symbolic-capable member of the
regular-section family).

Two references are independent across iterations of loop ``i`` when their
accessed subscript ranges, taken over *different* iterations, provably do
not overlap — e.g. ``A(i)`` written and ``A(i-1)`` read overlap, while
``A(2*i)`` and ``A(2*i+1)`` never do.  Works with symbolic bounds via the
:class:`~repro.symbolic.compare.Comparer`, unlike the numeric tests.
"""

from __future__ import annotations

from typing import Optional

from ..symbolic import Comparer, Predicate, Relation, SymExpr


def siv_independent(
    src: SymExpr,
    dst: SymExpr,
    index: str,
    lo: SymExpr,
    hi: SymExpr,
    cmp: Comparer,
) -> Optional[bool]:
    """Single-index-variable cross-iteration independence.

    Is ``src(i) == dst(i')`` impossible for ``lo <= i != i' <= hi``?
    Handles the strong-SIV (equal coefficients) and constant-coefficient
    cases symbolically.  Returns ``True`` = provably independent,
    ``False`` = provably dependent, ``None`` = cannot tell.
    """
    if not (src.is_linear_in(index) and dst.is_linear_in(index)):
        return None
    a = src.coeff_of_var(index)
    b = dst.coeff_of_var(index)
    src_rest = src - SymExpr.var(index).scaled(a)
    dst_rest = dst - SymExpr.var(index).scaled(b)
    if a == b:
        if a == 0:
            # both invariant: same location every iteration -> dependent
            # across iterations iff the values are ever equal
            diff = (src_rest - dst_rest).constant_value()
            if diff is None:
                return None
            return diff != 0
        # strong SIV: a*i + c1 == a*i' + c2  =>  i - i' = (c2-c1)/a;
        # cross-iteration dependence iff that distance is a nonzero integer
        # within the iteration span
        delta = dst_rest - src_rest
        dv = delta.constant_value()
        if dv is None:
            # symbolic distance: independent iff provably zero... which is
            # the same-iteration case; cannot tell otherwise
            if cmp.eq(src_rest, dst_rest) is True:
                return True  # distance 0: no *cross-iteration* dependence
            return None
        distance = dv / a
        if distance.denominator != 1:
            return True  # non-integer distance: never equal
        d = distance.numerator
        if d == 0:
            return True  # same iteration only
        # dependent iff |d| <= span; span = hi - lo
        span = hi - lo
        within = cmp.le(SymExpr.const(abs(d)), span)
        if within is True:
            return False
        if within is False:
            return True
        return None
    # weak SIV with constant coefficients: a*i - b*i' = c2 - c1
    diff = (dst_rest - src_rest).constant_value()
    if diff is None:
        return None
    # check a few structural impossibilities: parity/gcd argument
    from math import gcd

    if a.denominator == 1 and b.denominator == 1 and diff.denominator == 1:
        g = gcd(abs(a.numerator), abs(b.numerator))
        if g and diff.numerator % g != 0:
            return True
    return None


def overlap_possible(
    src_lo: SymExpr,
    src_hi: SymExpr,
    dst_lo: SymExpr,
    dst_hi: SymExpr,
    cmp: Comparer,
) -> Optional[bool]:
    """Can the two closed symbolic ranges intersect?

    ``False`` when provably disjoint (one ends before the other starts).
    """
    before = cmp.prove(Relation.lt(src_hi, dst_lo))
    after = cmp.prove(Relation.lt(dst_hi, src_lo))
    if before is True or after is True:
        return False
    if before is False and after is False:
        return True
    return None
