"""The Banerjee bounds test.

For each subscript dimension, dependence requires::

    f(i_1..i_m) - g(j_1..j_m) = 0     for some iterations within bounds

The test computes the minimum and maximum of the left-hand side over the
iteration rectangle; if 0 lies outside ``[min, max]`` there is no
dependence.  Loop bounds must be numeric for the dimension to count —
symbolic bounds make the dimension inapplicable (``None``), which again
is the classical gap the paper's approach fills.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..symbolic import SymExpr
from .subscript import AffineForm, affine_form


@dataclass(frozen=True)
class LoopBounds:
    """Numeric bounds of one loop index (inclusive)."""

    index: str
    lo: int
    hi: int
    step: int = 1


def _term_extremes(coeff: Fraction, bounds: LoopBounds) -> tuple[Fraction, Fraction]:
    values = (coeff * bounds.lo, coeff * bounds.hi)
    return min(values), max(values)


def banerjee_test_dimension(
    src: AffineForm,
    dst: AffineForm,
    bounds: dict[str, LoopBounds],
) -> Optional[bool]:
    """``False`` = independent in this dimension, ``True`` = possible,
    ``None`` = inapplicable (symbolic terms or missing bounds)."""
    rest = src.symbolic_rest - dst.symbolic_rest
    if not rest.is_zero():
        return None
    lo = src.const - dst.const
    hi = lo
    for name, coeff in src.coeffs:
        b = bounds.get(name)
        if b is None:
            return None
        tlo, thi = _term_extremes(coeff, b)
        lo += tlo
        hi += thi
    for name, coeff in dst.coeffs:
        b = bounds.get(name)
        if b is None:
            return None
        tlo, thi = _term_extremes(-coeff, b)
        lo += tlo
        hi += thi
    return lo <= 0 <= hi


def banerjee_test(
    src_subs: list[Optional[SymExpr]],
    dst_subs: list[Optional[SymExpr]],
    indices: tuple[str, ...],
    bounds: dict[str, LoopBounds],
) -> Optional[bool]:
    """Whole-reference Banerjee test (conjunction over dimensions)."""
    decided = False
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        verdict = banerjee_test_dimension(fs, fd, bounds)
        if verdict is False:
            return False
        if verdict is True:
            decided = True
    return True if decided else None
