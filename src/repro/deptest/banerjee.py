"""The Banerjee bounds test.

For each subscript dimension, dependence requires::

    f(i_1..i_m) - g(j_1..j_m) = 0     for some iterations within bounds

The test computes the minimum and maximum of the left-hand side over the
iteration rectangle; if 0 lies outside ``[min, max]`` there is no
dependence.  Loop bounds must be numeric for the dimension to count —
symbolic bounds make the dimension inapplicable (``None``), which again
is the classical gap the paper's approach fills.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from ..perf.profiler import COUNTERS
from ..symbolic import SymExpr
from ..symbolic.matrix import HAVE_NUMPY, _INT64_SAFE
from .subscript import AffineForm, affine_form

if HAVE_NUMPY:  # pragma: no branch - module-level import guard
    import numpy as _np
else:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


@dataclass(frozen=True)
class LoopBounds:
    """Numeric bounds of one loop index (inclusive)."""

    index: str
    lo: int
    hi: int
    step: int = 1


def _term_extremes(coeff: Fraction, bounds: LoopBounds) -> tuple[Fraction, Fraction]:
    values = (coeff * bounds.lo, coeff * bounds.hi)
    return min(values), max(values)


def banerjee_test_dimension(
    src: AffineForm,
    dst: AffineForm,
    bounds: dict[str, LoopBounds],
) -> Optional[bool]:
    """``False`` = independent in this dimension, ``True`` = possible,
    ``None`` = inapplicable (symbolic terms or missing bounds)."""
    rest = src.symbolic_rest - dst.symbolic_rest
    if not rest.is_zero():
        return None
    lo = src.const - dst.const
    hi = lo
    for name, coeff in src.coeffs:
        b = bounds.get(name)
        if b is None:
            return None
        tlo, thi = _term_extremes(coeff, b)
        lo += tlo
        hi += thi
    for name, coeff in dst.coeffs:
        b = bounds.get(name)
        if b is None:
            return None
        tlo, thi = _term_extremes(-coeff, b)
        lo += tlo
        hi += thi
    return lo <= 0 <= hi


def banerjee_test(
    src_subs: list[Optional[SymExpr]],
    dst_subs: list[Optional[SymExpr]],
    indices: tuple[str, ...],
    bounds: dict[str, LoopBounds],
) -> Optional[bool]:
    """Whole-reference Banerjee test (conjunction over dimensions)."""
    decided = False
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        verdict = banerjee_test_dimension(fs, fd, bounds)
        if verdict is False:
            return False
        if verdict is True:
            decided = True
    return True if decided else None


def _banerjee_rows(
    src_subs: Sequence[Optional[SymExpr]],
    dst_subs: Sequence[Optional[SymExpr]],
    indices: tuple[str, ...],
    bounds: dict[str, LoopBounds],
    columns: Sequence[str],
) -> Optional[list[tuple[list[int], list[int], int]]]:
    """Applicable dimensions of one pair as ``(src coeffs, dst coeffs,
    const diff)`` integer rows over *columns*.

    Returns ``None`` when some applicable dimension needs the exact
    scalar path (fractional coefficients or oversized magnitudes) — the
    batch driver then loops :func:`banerjee_test_dimension` for the pair.
    """
    col_index = {name: k for k, name in enumerate(columns)}
    rows: list[tuple[list[int], list[int], int]] = []
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        rest = fs.symbolic_rest - fd.symbolic_rest
        if not rest.is_zero():
            continue
        # the scalar test demands bounds for every *listed* coefficient
        # (even a cancelled zero one), so mirror that applicability rule
        if any(name not in bounds for name, _ in fs.coeffs + fd.coeffs):
            continue
        diff = fs.const - fd.const
        if diff.denominator != 1 or any(
            v.denominator != 1 for _, v in fs.coeffs + fd.coeffs
        ):
            return None
        if abs(diff.numerator) > _INT64_SAFE or any(
            abs(v.numerator) > _INT64_SAFE for _, v in fs.coeffs + fd.coeffs
        ):
            return None
        src_row = [0] * len(columns)
        dst_row = [0] * len(columns)
        for name, v in fs.coeffs:
            src_row[col_index[name]] += v.numerator
        for name, v in fd.coeffs:
            dst_row[col_index[name]] += v.numerator
        rows.append((src_row, dst_row, diff.numerator))
    return rows


def banerjee_test_many(
    pairs: Sequence[
        Tuple[Sequence[Optional[SymExpr]], Sequence[Optional[SymExpr]]]
    ],
    indices: tuple[str, ...],
    bounds: dict[str, LoopBounds],
) -> list[Optional[bool]]:
    """Batched whole-reference Banerjee test over many pairs at once.

    All applicable subscript dimensions of all pairs become rows of one
    extremes computation over the shared loop-bounds rectangle; verdicts
    are identical to looping :func:`banerjee_test`.
    """
    COUNTERS.deptest_batched_pairs += len(pairs)
    columns = [name for name in bounds]
    out: list = [None] * len(pairs)
    flat: list[tuple[int, list[int], list[int], int]] = []
    for i, (src_subs, dst_subs) in enumerate(pairs):
        rows = _banerjee_rows(src_subs, dst_subs, indices, bounds, columns)
        if rows is None:  # exact scalar path for the whole pair
            out[i] = banerjee_test(
                list(src_subs), list(dst_subs), indices, bounds
            )
            continue
        for src_row, dst_row, diff in rows:
            flat.append((i, src_row, dst_row, diff))
    if not flat:
        return out
    los = [bounds[name].lo for name in columns]
    his = [bounds[name].hi for name in columns]
    # int64 safety for the vector path: |coeff * bound| summed over the
    # columns must stay far from 2**63, so cap both factors at 2**20
    # (anything larger goes down the exact arbitrary-precision loop)
    small = (1 << 20)
    if _np is not None and all(
        abs(v) <= small for v in los + his
    ) and all(
        abs(c) <= small
        for _, src_row, dst_row, _ in flat
        for c in src_row + dst_row
    ):
        A = _np.array([r[1] for r in flat], dtype=_np.int64)
        B = _np.array([r[2] for r in flat], dtype=_np.int64)
        diffs = _np.array([r[3] for r in flat], dtype=_np.int64)
        lo_v = _np.array(los, dtype=_np.int64)
        hi_v = _np.array(his, dtype=_np.int64)
        s1, s2 = A * lo_v, A * hi_v
        d1, d2 = -B * lo_v, -B * hi_v
        lo_total = (
            diffs
            + _np.minimum(s1, s2).sum(axis=1)
            + _np.minimum(d1, d2).sum(axis=1)
        )
        hi_total = (
            diffs
            + _np.maximum(s1, s2).sum(axis=1)
            + _np.maximum(d1, d2).sum(axis=1)
        )
        row_verdicts = [
            bool(v) for v in (lo_total <= 0) & (0 <= hi_total)
        ]
    else:
        row_verdicts = []
        for _, src_row, dst_row, diff in flat:
            lo_t = hi_t = diff
            for k in range(len(columns)):
                for c in (src_row[k], -dst_row[k]):
                    t1, t2 = c * los[k], c * his[k]
                    lo_t += min(t1, t2)
                    hi_t += max(t1, t2)
            row_verdicts.append(lo_t <= 0 <= hi_t)
    for (i, _, _, _), verdict in zip(flat, row_verdicts):
        if out[i] is None and not verdict:
            out[i] = False
    for (i, _, _, _), verdict in zip(flat, row_verdicts):
        if out[i] is None and verdict:
            out[i] = True
    return out
