"""Conventional loop dependence screening (the paper's pre-filter).

Section 6: "The more expensive array dataflow analysis is applied only to
loops whose parallelizability cannot be determined by the conventional
data dependence tests."  This module is that first stage: pairwise GCD /
Banerjee / symbolic-range tests over the references of a loop.

The conventional tests perform memory disambiguation only — they know
nothing about value flow, IF conditions, or interprocedural effects, so
their possible verdicts per loop are:

* ``INDEPENDENT`` — no reference pair of any array can alias across
  iterations and no scalar is written: the loop is parallel outright;
* ``POSSIBLE_DEPENDENCE`` — some pair may alias (or was unanalyzable):
  hand the loop to the array dataflow analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from ..dataflow.convert import ConversionContext, to_symexpr
from ..hsg.nodes import LoopNode
from ..symbolic import Comparer, SymExpr
from .banerjee import LoopBounds, banerjee_test_many
from .gcd import gcd_test_many
from .range_test import siv_independent
from .subscript import ArrayReference, collect_references


class ScreenVerdict(enum.Enum):
    """Outcome of the conventional-tests screening of one loop."""

    INDEPENDENT = "independent"
    POSSIBLE_DEPENDENCE = "possible-dependence"


@dataclass
class PairResult:
    src: ArrayReference
    dst: ArrayReference
    independent: Optional[bool]
    test: str


@dataclass
class ScreenReport:
    verdict: ScreenVerdict
    pairs: list[PairResult] = field(default_factory=list)
    scalars_written: list[str] = field(default_factory=list)

    def blocking_pairs(self) -> list[PairResult]:
        """Pairs the tests could not prove independent."""
        return [p for p in self.pairs if p.independent is not True]


def _numeric_bounds(
    loop: LoopNode, ctx: ConversionContext
) -> dict[str, LoopBounds]:
    """Constant bounds for the loop and its perfectly-known inner loops."""
    out: dict[str, LoopBounds] = {}

    def visit(node: LoopNode, inner: ConversionContext) -> None:
        lo = to_symexpr(node.start, inner)
        hi = to_symexpr(node.stop, inner)
        step = to_symexpr(node.step, inner) if node.step is not None else SymExpr.const(1)
        if lo is not None and hi is not None and step is not None:
            lov, hiv, sv = (
                lo.constant_value(),
                hi.constant_value(),
                step.constant_value(),
            )
            if (
                lov is not None
                and hiv is not None
                and sv is not None
                and lov.denominator == hiv.denominator == sv.denominator == 1
                and sv != 0
            ):
                out[node.var] = LoopBounds(
                    node.var, lov.numerator, hiv.numerator, sv.numerator
                )
        deeper = inner.with_index(node.var)
        for sub in node.body.nodes:
            if isinstance(sub, LoopNode):
                visit(sub, deeper)

    visit(loop, ctx)
    return out


def _pair_independent(
    a: ArrayReference,
    b: ArrayReference,
    loop: LoopNode,
    gcd_verdict: Optional[bool],
    banerjee_verdict: Optional[bool],
    ctx: ConversionContext,
    cmp: Comparer,
) -> PairResult:
    subs_a = list(a.subscripts)
    subs_b = list(b.subscripts)
    if len(subs_a) != len(subs_b):
        return PairResult(a, b, None, "rank-mismatch")
    if gcd_verdict is False:
        return PairResult(a, b, True, "gcd")
    if banerjee_verdict is False:
        return PairResult(a, b, True, "banerjee")
    # symbolic SIV on the loop being screened
    if len(subs_a) == len(subs_b):
        lo = to_symexpr(loop.start, ctx) or SymExpr.var("?lo")
        hi = to_symexpr(loop.stop, ctx) or SymExpr.var("?hi")
        all_independent = True
        any_decided = False
        for s, d in zip(subs_a, subs_b):
            if s is None or d is None:
                all_independent = False
                continue
            r = siv_independent(s, d, loop.var, lo, hi, cmp)
            if r is True:
                return PairResult(a, b, True, "symbolic-siv")
            if r is None:
                all_independent = False
            else:
                any_decided = True
        if any_decided and not all_independent:
            return PairResult(a, b, False, "symbolic-siv")
    return PairResult(a, b, None, "inconclusive")


def screen_loop(
    loop: LoopNode, ctx: ConversionContext, cmp: Comparer
) -> ScreenReport:
    """Run the conventional tests over every conflicting reference pair."""
    refs = collect_references(loop, ctx)
    bounds = _numeric_bounds(loop, ctx)
    report = ScreenReport(ScreenVerdict.INDEPENDENT)
    # scalar writes always carry (output) dependences for these tests
    scalars = _scalar_writes(loop, ctx)
    report.scalars_written = sorted(scalars)
    pairs: list[tuple[ArrayReference, ArrayReference]] = []
    for x, y in combinations(refs, 2):
        if x.array != y.array:
            continue
        if not (x.is_write or y.is_write):
            continue
        pairs.append((x, y))
    for x in refs:
        if x.is_write:
            pairs.append((x, x))  # self output-dependence across iterations
    # all pairs go through the numeric tests as single batch submissions
    # (rank-mismatched pairs are screened out of the batch, matching the
    # early return in _pair_independent)
    subs_pairs = []
    batch_slots = []
    for slot, (x, y) in enumerate(pairs):
        if len(x.subscripts) == len(y.subscripts):
            subs_pairs.append((x, y))
            batch_slots.append(slot)
    gcd_verdicts: list[Optional[bool]] = [None] * len(pairs)
    banerjee_verdicts: list[Optional[bool]] = [None] * len(pairs)
    if subs_pairs:
        by_indices: dict[tuple[str, ...], list[int]] = {}
        for k, (x, y) in enumerate(subs_pairs):
            by_indices.setdefault(
                tuple(dict.fromkeys(x.nest + y.nest)), []
            ).append(k)
        for indices, ks in by_indices.items():
            batch = [
                (subs_pairs[k][0].subscripts, subs_pairs[k][1].subscripts)
                for k in ks
            ]
            for k, v in zip(ks, gcd_test_many(batch, indices)):
                gcd_verdicts[batch_slots[k]] = v
            for k, v in zip(
                ks, banerjee_test_many(batch, indices, bounds)
            ):
                banerjee_verdicts[batch_slots[k]] = v
    for slot, (x, y) in enumerate(pairs):
        result = _pair_independent(
            x, y, loop, gcd_verdicts[slot], banerjee_verdicts[slot], ctx, cmp
        )
        report.pairs.append(result)
    if report.scalars_written or any(
        p.independent is not True for p in report.pairs
    ):
        report.verdict = ScreenVerdict.POSSIBLE_DEPENDENCE
    return report


def _scalar_writes(loop: LoopNode, ctx: ConversionContext) -> set[str]:
    from ..fortran.ast_nodes import Assign, NameRef
    from ..hsg.cfg import FlowGraph
    from ..hsg.nodes import BasicBlockNode

    out: set[str] = set()

    def scan(graph: FlowGraph) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    if isinstance(stmt, Assign) and isinstance(
                        stmt.target, NameRef
                    ):
                        out.add(stmt.target.name)
            elif isinstance(node, LoopNode):
                out.add(node.var)
                scan(node.body)

    scan(loop.body)
    return out
