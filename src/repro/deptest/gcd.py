"""The GCD dependence test (Banerjee / Kuck lineage).

For one subscript dimension of a reference pair inside a common loop
nest, a dependence requires integer solutions of::

    sum_k a_k * i_k  -  sum_k b_k * j_k  =  c0

which (ignoring bounds) have none unless ``gcd(all coefficients)`` divides
the constant difference.  Purely numeric: any symbolic additive term makes
the test inapplicable for that dimension (returns ``None``), which is the
classical weakness the paper's symbolic analysis addresses.
"""

from __future__ import annotations

from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Optional, Sequence, Tuple

from ..perf.profiler import COUNTERS
from ..symbolic import SymExpr
from ..symbolic.matrix import HAVE_NUMPY, _INT64_SAFE
from .subscript import AffineForm, affine_form

if HAVE_NUMPY:  # pragma: no branch - module-level import guard
    import numpy as _np
else:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


def gcd_test_dimension(
    src: AffineForm, dst: AffineForm
) -> Optional[bool]:
    """``False`` = provably no dependence in this dimension;
    ``True`` = integer solutions exist (dependence possible);
    ``None`` = inapplicable (symbolic terms / non-integer data)."""
    rest = src.symbolic_rest - dst.symbolic_rest
    if not rest.is_zero():
        return None
    coeffs: list[int] = []
    for _, value in src.coeffs + dst.coeffs:
        if value.denominator != 1:
            return None
        coeffs.append(abs(value.numerator))
    diff = dst.const - src.const
    if diff.denominator != 1:
        return None
    if not coeffs:
        return diff == 0
    g = reduce(gcd, coeffs)
    if g == 0:
        return diff == 0
    return diff.numerator % g == 0


def gcd_test(
    src_subs: list[Optional[SymExpr]],
    dst_subs: list[Optional[SymExpr]],
    indices: tuple[str, ...],
) -> Optional[bool]:
    """Whole-reference GCD test: no dependence if any dimension refutes it.

    Returns ``False`` (independent), ``True`` (possible dependence), or
    ``None`` when no dimension was analyzable.
    """
    decided = False
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        verdict = gcd_test_dimension(fs, fd)
        if verdict is False:
            return False
        if verdict is True:
            decided = True
    return True if decided else None


def _gcd_rows(
    src_subs: Sequence[Optional[SymExpr]],
    dst_subs: Sequence[Optional[SymExpr]],
    indices: tuple[str, ...],
) -> Optional[list[tuple[list[int], int]]]:
    """The applicable dimensions of one pair as ``(|coeffs|, diff)`` rows.

    ``None`` entries in the row list mark inapplicable dimensions (they
    contribute nothing, exactly like the scalar loop's ``continue``); a
    row whose magnitudes exceed the int64-safe bound is returned as part
    of ``None`` overall, telling the batch driver to use the exact scalar
    path for the whole pair.
    """
    rows: list[tuple[list[int], int]] = []
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        rest = fs.symbolic_rest - fd.symbolic_rest
        if not rest.is_zero():
            continue
        coeffs: list[int] = []
        ok = True
        for _, value in fs.coeffs + fd.coeffs:
            if value.denominator != 1:
                ok = False
                break
            coeffs.append(abs(value.numerator))
        if not ok:
            continue
        diff = fd.const - fs.const
        if diff.denominator != 1:
            continue
        if any(c > _INT64_SAFE for c in coeffs) or abs(diff.numerator) > _INT64_SAFE:
            return None
        rows.append((coeffs, diff.numerator))
    return rows


def gcd_test_many(
    pairs: Sequence[
        Tuple[Sequence[Optional[SymExpr]], Sequence[Optional[SymExpr]]]
    ],
    indices: tuple[str, ...],
) -> list[Optional[bool]]:
    """Batched whole-reference GCD test over many pairs at once.

    Every applicable subscript dimension of every pair becomes one row of
    a single integer computation (``numpy.gcd`` reductions when numpy is
    present); verdicts are identical to looping :func:`gcd_test`.
    """
    COUNTERS.deptest_batched_pairs += len(pairs)
    out: list = [None] * len(pairs)
    flat: list[tuple[int, list[int], int]] = []
    for i, (src_subs, dst_subs) in enumerate(pairs):
        rows = _gcd_rows(src_subs, dst_subs, indices)
        if rows is None:  # oversized coefficients: exact scalar path
            out[i] = gcd_test(list(src_subs), list(dst_subs), indices)
            continue
        for coeffs, diff in rows:
            flat.append((i, coeffs, diff))
    if not flat:
        return out
    if _np is not None:
        width = max(len(coeffs) for _, coeffs, _ in flat)
        mat = _np.zeros((len(flat), width + 1), dtype=_np.int64)
        diffs = _np.empty(len(flat), dtype=_np.int64)
        for r, (_, coeffs, diff) in enumerate(flat):
            if coeffs:
                mat[r, : len(coeffs)] = coeffs
            diffs[r] = diff
        g = _np.gcd.reduce(mat, axis=1)
        nonzero = g != 0
        verdicts = _np.empty(len(flat), dtype=bool)
        verdicts[~nonzero] = diffs[~nonzero] == 0
        verdicts[nonzero] = (diffs[nonzero] % g[nonzero]) == 0
        row_verdicts = [bool(v) for v in verdicts]
    else:
        row_verdicts = []
        for _, coeffs, diff in flat:
            g = reduce(gcd, coeffs, 0)
            row_verdicts.append(diff == 0 if g == 0 else diff % g == 0)
    for (i, _, _), verdict in zip(flat, row_verdicts):
        if out[i] is None and not verdict:
            out[i] = False
    for (i, _, _), verdict in zip(flat, row_verdicts):
        if out[i] is None and verdict:
            out[i] = True
    return out
