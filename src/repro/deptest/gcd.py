"""The GCD dependence test (Banerjee / Kuck lineage).

For one subscript dimension of a reference pair inside a common loop
nest, a dependence requires integer solutions of::

    sum_k a_k * i_k  -  sum_k b_k * j_k  =  c0

which (ignoring bounds) have none unless ``gcd(all coefficients)`` divides
the constant difference.  Purely numeric: any symbolic additive term makes
the test inapplicable for that dimension (returns ``None``), which is the
classical weakness the paper's symbolic analysis addresses.
"""

from __future__ import annotations

from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Optional

from ..symbolic import SymExpr
from .subscript import AffineForm, affine_form


def gcd_test_dimension(
    src: AffineForm, dst: AffineForm
) -> Optional[bool]:
    """``False`` = provably no dependence in this dimension;
    ``True`` = integer solutions exist (dependence possible);
    ``None`` = inapplicable (symbolic terms / non-integer data)."""
    rest = src.symbolic_rest - dst.symbolic_rest
    if not rest.is_zero():
        return None
    coeffs: list[int] = []
    for _, value in src.coeffs + dst.coeffs:
        if value.denominator != 1:
            return None
        coeffs.append(abs(value.numerator))
    diff = dst.const - src.const
    if diff.denominator != 1:
        return None
    if not coeffs:
        return diff == 0
    g = reduce(gcd, coeffs)
    if g == 0:
        return diff == 0
    return diff.numerator % g == 0


def gcd_test(
    src_subs: list[Optional[SymExpr]],
    dst_subs: list[Optional[SymExpr]],
    indices: tuple[str, ...],
) -> Optional[bool]:
    """Whole-reference GCD test: no dependence if any dimension refutes it.

    Returns ``False`` (independent), ``True`` (possible dependence), or
    ``None`` when no dimension was analyzable.
    """
    decided = False
    for s, d in zip(src_subs, dst_subs):
        if s is None or d is None:
            continue
        fs = affine_form(s, indices)
        fd = affine_form(d, indices)
        if fs is None or fd is None:
            continue
        verdict = gcd_test_dimension(fs, fd)
        if verdict is False:
            return False
        if verdict is True:
            decided = True
    return True if decided else None
