"""Text and JSON renderers for :class:`~repro.diagnostics.Diagnostic`.

The text form is the familiar compiler shape —
``file:line: severity: message [CODE]`` — with an optional indented
source snippet, so audit output reads like gcc/flang diagnostics.  The
JSON form is the dict the CLIs embed under the ``"audit"`` key and the
SARIF builder consumes.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .diagnostic import Diagnostic, Severity, SourceSpan, sort_key


def render_diagnostic(diag: Diagnostic, show_snippet: bool = True) -> str:
    """One diagnostic in compiler-style text form."""
    where = f"{diag.span}: " if diag.span is not None else ""
    head = f"{where}{diag.level.value}: {diag.message} [{diag.code}]"
    if show_snippet and diag.span is not None and diag.span.snippet:
        return f"{head}\n    {diag.span.snippet}"
    return head


def render_text(
    diags: Iterable[Diagnostic], show_snippets: bool = True
) -> str:
    """All diagnostics, severity-major order, one block of text."""
    ordered = sorted(diags, key=sort_key)
    return "\n".join(render_diagnostic(d, show_snippets) for d in ordered)


def span_to_dict(span: SourceSpan) -> dict[str, Any]:
    out: dict[str, Any] = {"file": span.file, "lineno": span.lineno}
    if span.end_lineno is not None:
        out["end_lineno"] = span.end_lineno
    if span.snippet is not None:
        out["snippet"] = span.snippet
    return out


def diagnostic_to_dict(diag: Diagnostic) -> dict[str, Any]:
    """JSON-ready form of one diagnostic (round-trips via from_dict)."""
    out: dict[str, Any] = {
        "code": diag.code,
        "rule": diag.rule.name,
        "severity": diag.level.value,
        "message": diag.message,
    }
    if diag.span is not None:
        out["span"] = span_to_dict(diag.span)
    if diag.data:
        out["data"] = dict(diag.data)
    return out


def diagnostic_from_dict(payload: dict[str, Any]) -> Diagnostic:
    """Rehydrate a diagnostic shipped across a process boundary."""
    span: Optional[SourceSpan] = None
    if "span" in payload:
        s = payload["span"]
        span = SourceSpan(
            file=s["file"],
            lineno=s["lineno"],
            end_lineno=s.get("end_lineno"),
            snippet=s.get("snippet"),
        )
    return Diagnostic(
        code=payload["code"],
        message=payload["message"],
        span=span,
        severity=Severity(payload["severity"]),
        data=dict(payload.get("data", {})),
    )


def render_json(diags: Iterable[Diagnostic]) -> list[dict[str, Any]]:
    """All diagnostics as JSON-ready dicts, severity-major order."""
    return [diagnostic_to_dict(d) for d in sorted(diags, key=sort_key)]
