"""The :class:`Diagnostic` record and the stable rule registry.

Every user-facing finding in the system — audit races (PAN1xx),
front-end lint warnings (PAN2xx), and internal-consistency violations
(PAN3xx) — is a :class:`Diagnostic`: a stable code, a severity, a
message, an optional source span, and a free-form structured payload.
The renderers in :mod:`repro.diagnostics.render` and
:mod:`repro.diagnostics.sarif` consume nothing else, so any subsystem
that can build a ``Diagnostic`` is automatically visible in text, JSON,
and SARIF output.

Codes are append-only: a published code never changes meaning, so CI
baselines and SARIF consumers can match on ``ruleId`` forever.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional


class Severity(enum.Enum):
    """Diagnostic severity; values match SARIF 2.1.0 ``level`` strings."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class SourceSpan:
    """A location in a named source artifact (1-based line numbers)."""

    file: str
    lineno: int
    end_lineno: Optional[int] = None
    #: the statement text, when the caller resolved it (see resolve_span)
    snippet: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.file}:{self.lineno}"


@dataclass(frozen=True)
class Rule:
    """One stable diagnostic code and its default presentation."""

    code: str
    name: str
    short: str
    severity: Severity


#: the append-only rule registry (code → rule)
RULES: dict[str, Rule] = {
    r.code: r
    for r in (
        # -- PAN1xx: the static race auditor (src/repro/audit) -----------
        Rule(
            "PAN101",
            "audit/confirmed-race",
            "A loop reported parallel carries a provable cross-iteration "
            "dependence",
            Severity.ERROR,
        ),
        Rule(
            "PAN102",
            "audit/undecided-pair",
            "No dependence test could decide a cross-iteration reference "
            "pair in a parallel loop",
            Severity.NOTE,
        ),
        Rule(
            "PAN103",
            "audit/guarded-dependence",
            "A memory-level carried dependence exists under control guards "
            "the conventional tests cannot see",
            Severity.WARNING,
        ),
        Rule(
            "PAN104",
            "audit/skipped-loop",
            "A loop was skipped by the audit (degraded or unanalyzable "
            "verdict)",
            Severity.NOTE,
        ),
        Rule(
            "PAN105",
            "audit/evidence-replay",
            "A frontier evidence record behind a parallel verdict could "
            "not be independently re-derived from the source",
            Severity.ERROR,
        ),
        # -- PAN2xx: front-end lint (src/repro/audit/lint) ----------------
        Rule(
            "PAN201",
            "frontend/premature-exit",
            "A DO loop has a premature exit; it is handled conservatively "
            "and can never be parallel",
            Severity.WARNING,
        ),
        Rule(
            "PAN202",
            "frontend/goto-cycle",
            "A backward-GOTO cycle was condensed; its array accesses are "
            "summarized as wholly read and written",
            Severity.WARNING,
        ),
        Rule(
            "PAN203",
            "frontend/common-aliasing",
            "A CALL argument aliases COMMON storage (or another argument); "
            "interprocedural summaries may be imprecise",
            Severity.WARNING,
        ),
        # -- PAN3xx: internal consistency -----------------------------------
        Rule(
            "PAN301",
            "internal/gar-sanitizer",
            "A GAR set operation violated its algebraic contract under "
            "concrete sampling",
            Severity.ERROR,
        ),
        Rule(
            "PAN302",
            "internal/oracle-conflict",
            "Two dependence tests proved contradictory verdicts for the "
            "same reference pair",
            Severity.ERROR,
        ),
        Rule(
            "PAN305",
            "internal/evidence-unsupported",
            "An evidence record has a kind the auditor does not know how "
            "to replay",
            Severity.ERROR,
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, ready for any renderer."""

    code: str
    message: str
    span: Optional[SourceSpan] = None
    #: None = use the registry default for the code
    severity: Optional[Severity] = None
    #: structured payload (loop id, variable, per-test votes, ...);
    #: must be JSON-serializable primitives
    data: Mapping[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    @property
    def level(self) -> Severity:
        """Effective severity (explicit, or the rule default)."""
        return self.severity if self.severity is not None else self.rule.severity


def resolve_span(
    file: str, lineno: int, source: Optional[str] = None
) -> SourceSpan:
    """Build a span, resolving the statement snippet via fortran/source.

    ``lineno`` is the physical 1-based line number the front end recorded;
    when *source* is given the matching logical statement's text becomes
    the snippet (a logical line may start earlier than ``lineno`` if the
    statement is a continuation — the nearest logical line at or before
    ``lineno`` wins).
    """
    snippet: Optional[str] = None
    if source is not None and lineno > 0:
        from ..fortran.source import normalize

        try:
            lines = normalize(source)
        except Exception:
            lines = []
        best = None
        for line in lines:
            if line.lineno <= lineno and (best is None or line.lineno > best.lineno):
                best = line
        if best is not None:
            snippet = best.text
    return SourceSpan(file=file, lineno=lineno, snippet=snippet)


def sort_key(diag: Diagnostic) -> tuple:
    """Stable presentation order: severity, then location, then code."""
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}
    span = diag.span
    return (
        order[diag.level],
        span.file if span else "",
        span.lineno if span else 0,
        diag.code,
        diag.message,
    )
