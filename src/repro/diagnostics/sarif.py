"""SARIF 2.1.0 export for diagnostics.

Emits the minimal-but-valid subset of the Static Analysis Results
Interchange Format every mainstream consumer (GitHub code scanning,
``sarif-tools``) accepts: one run, one tool driver with a ``rules``
array covering the codes actually used, and one ``result`` per
diagnostic with ``ruleId``/``ruleIndex``, a ``level``, a text message,
and a physical location when the diagnostic has a span.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .diagnostic import RULES, Diagnostic, sort_key

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "panorama"
TOOL_URI = "https://example.org/panorama"


def _rule_to_sarif(code: str) -> dict[str, Any]:
    rule = RULES[code]
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.short},
        "defaultConfiguration": {"level": rule.severity.value},
    }


def _result_to_sarif(
    diag: Diagnostic, rule_index: dict[str, int]
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": diag.level.value,
        "message": {"text": diag.message},
    }
    if diag.span is not None:
        region: dict[str, Any] = {"startLine": max(1, diag.span.lineno)}
        if diag.span.end_lineno is not None:
            region["endLine"] = diag.span.end_lineno
        if diag.span.snippet:
            region["snippet"] = {"text": diag.span.snippet}
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.span.file},
                    "region": region,
                }
            }
        ]
    if diag.data:
        result["properties"] = dict(diag.data)
    return result


def sarif_log(diags: Iterable[Diagnostic]) -> dict[str, Any]:
    """A complete SARIF 2.1.0 log as a JSON-ready dict."""
    from .. import __version__

    ordered = sorted(diags, key=sort_key)
    used_codes = sorted({d.code for d in ordered})
    rule_index = {code: i for i, code in enumerate(used_codes)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": __version__,
                        "informationUri": TOOL_URI,
                        "rules": [_rule_to_sarif(c) for c in used_codes],
                    }
                },
                "results": [_result_to_sarif(d, rule_index) for d in ordered],
            }
        ],
    }


def write_sarif(diags: Iterable[Diagnostic], path: str | Path) -> None:
    """Serialize the SARIF log for *diags* to *path*."""
    Path(path).write_text(
        json.dumps(sarif_log(diags), indent=2, sort_keys=True) + "\n"
    )
