"""Structured diagnostics: stable codes, severities, spans, renderers.

See docs/auditing.md for the code taxonomy:

* ``PAN1xx`` — static race auditor findings,
* ``PAN2xx`` — front-end lint warnings,
* ``PAN3xx`` — internal-consistency violations.
"""

from .diagnostic import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    SourceSpan,
    resolve_span,
    sort_key,
)
from .render import (
    diagnostic_from_dict,
    diagnostic_to_dict,
    render_diagnostic,
    render_json,
    render_text,
)
from .sarif import sarif_log, write_sarif

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "SourceSpan",
    "diagnostic_from_dict",
    "diagnostic_to_dict",
    "render_diagnostic",
    "render_json",
    "render_text",
    "resolve_span",
    "sarif_log",
    "sort_key",
    "write_sarif",
]
