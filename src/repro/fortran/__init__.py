"""Fortran-77 subset frontend: source handling, lexer, parser, semantics.

A from-scratch substrate standing in for Panorama's C frontend: it turns
Fortran source into an AST with resolved array references, per-unit symbol
tables, and an acyclic call graph.
"""

from .ast_nodes import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    CommonStmt,
    Continue,
    Declaration,
    DimensionStmt,
    DoLoop,
    Expr,
    Goto,
    IfBlock,
    IntLit,
    IoStmt,
    LogicalIf,
    LogicalLit,
    MiscDecl,
    NameRef,
    ParameterStmt,
    Program,
    ProgramUnit,
    RangeSub,
    RealLit,
    Return,
    Stmt,
    Stop,
    StringLit,
    UnOp,
)
from .callgraph import CallGraph, build_call_graph
from .lexer import tokenize
from .parser import parse_program, parse_unit
from .printers import unparse_expr, unparse_program, unparse_stmt, unparse_unit
from .semantics import (
    INTRINSICS,
    AnalyzedProgram,
    ArrayInfo,
    SymbolTable,
    analyze,
)
from .source import LogicalLine, normalize

__all__ = [
    "AnalyzedProgram",
    "Apply", "ArrayInfo", "Assign", "BinOp", "CallGraph", "CallStmt",
    "CommonStmt", "Continue", "Declaration", "DimensionStmt", "DoLoop",
    "Expr", "Goto", "INTRINSICS", "IfBlock", "IntLit", "IoStmt",
    "LogicalIf", "LogicalLit", "LogicalLine", "MiscDecl", "NameRef",
    "ParameterStmt", "Program", "ProgramUnit", "RangeSub", "RealLit",
    "Return", "Stmt", "Stop", "StringLit", "SymbolTable", "UnOp",
    "analyze", "build_call_graph", "normalize", "parse_program",
    "parse_unit", "tokenize", "unparse_expr", "unparse_program",
    "unparse_stmt", "unparse_unit",
]
