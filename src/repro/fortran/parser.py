"""Recursive-descent parser for the Fortran-77 subset.

Grammar coverage (everything the Perfect-benchmark kernels and the paper's
examples need, plus the usual surrounding forms):

* program units: ``PROGRAM``, ``SUBROUTINE``, ``[type] FUNCTION``, ``END``
* declarations: type statements (with ``*len``), ``DIMENSION``,
  ``PARAMETER``, ``COMMON``, ``IMPLICIT``/``EXTERNAL``/``INTRINSIC``/
  ``DATA``/``SAVE`` (parsed, kept as opaque :class:`MiscDecl`)
* executable: assignment, ``CALL``, block IF/ELSEIF/ELSE/ENDIF, logical IF,
  ``DO`` (both ``ENDDO`` and labeled terminator styles, including shared
  terminators), ``GOTO``, ``CONTINUE``, ``RETURN``, ``STOP``,
  ``WRITE``/``PRINT``/``READ``
* expressions with full Fortran operator precedence.

The parser is deliberately strict: anything outside the subset raises
:class:`~repro.errors.ParseError` with a line number rather than guessing.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from .ast_nodes import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    CommonStmt,
    Continue,
    Declaration,
    DimensionStmt,
    DoLoop,
    Expr,
    Goto,
    IfBlock,
    IntLit,
    IoStmt,
    LogicalIf,
    LogicalLit,
    MiscDecl,
    NameRef,
    ParameterStmt,
    Program,
    ProgramUnit,
    RangeSub,
    RealLit,
    Return,
    Stmt,
    Stop,
    StringLit,
    UnOp,
)
from .lexer import tokenize
from .source import LogicalLine, normalize
from .tokens import TokKind, Token

_TYPE_NAMES = {
    "integer",
    "real",
    "logical",
    "complex",
    "character",
    "doubleprecision",
}

_DECL_KEYWORDS = _TYPE_NAMES | {
    "dimension",
    "parameter",
    "common",
    "implicit",
    "external",
    "intrinsic",
    "data",
    "save",
    "double",
}

_REL_OPS = {
    TokKind.EQ: ".eq.",
    TokKind.NE: ".ne.",
    TokKind.LT: ".lt.",
    TokKind.LE: ".le.",
    TokKind.GT: ".gt.",
    TokKind.GE: ".ge.",
}


def parse_program(source: str) -> Program:
    """Parse a whole source file into a :class:`Program`."""
    lines = normalize(source)
    units: list[ProgramUnit] = []
    chunk: list[LogicalLine] = []
    for line in lines:
        chunk.append(line)
        if _is_end_statement(line.text):
            units.append(_parse_unit(chunk))
            chunk = []
    if chunk:
        units.append(_parse_unit(chunk))
    if not units:
        raise ParseError("empty program")
    return Program(units)


def parse_unit(source: str) -> ProgramUnit:
    """Parse a single program unit (convenience for tests)."""
    return parse_program(source).units[0]


def _is_end_statement(text: str) -> bool:
    words = text.split()
    if not words or words[0] != "end":
        return False
    return len(words) == 1 or words[1] in (
        "program",
        "subroutine",
        "function",
    )


def _parse_unit(lines: list[LogicalLine]) -> ProgramUnit:
    parser = _UnitParser(lines)
    return parser.parse()


class _Cursor:
    """Token cursor over one logical line."""

    def __init__(self, line: LogicalLine) -> None:
        self.line = line
        self.tokens = tokenize(line.text, line.lineno)
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def accept(self, kind: TokKind) -> Optional[Token]:
        if self.peek().kind is kind:
            return self.next()
        return None

    def accept_name(self, *names: str) -> Optional[Token]:
        if self.peek().is_name(*names):
            return self.next()
        return None

    def expect(self, kind: TokKind, what: str = "") -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {what or kind.value!r}, got {tok}", self.line.lineno
            )
        return tok

    def expect_name(self, *names: str) -> Token:
        tok = self.next()
        if tok.kind is not TokKind.NAME or (names and tok.text not in names):
            raise ParseError(
                f"expected {'/'.join(names) or 'a name'}, got {tok}",
                self.line.lineno,
            )
        return tok

    def at_eof(self) -> bool:
        return self.peek().kind is TokKind.EOF

    def require_eof(self) -> None:
        if not self.at_eof():
            raise ParseError(
                f"trailing tokens starting at {self.peek()}", self.line.lineno
            )

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.line.lineno)


class _UnitParser:
    """Parses one program unit from its logical lines."""

    def __init__(self, lines: list[LogicalLine]) -> None:
        self.lines = lines
        self.index = 0
        # stack of labels that enclosing labeled-DO loops are waiting for,
        # to support shared terminators (DO 10 ... DO 10 ... 10 CONTINUE)
        self._pending_do_labels: list[int] = []

    # -- line-level plumbing ----------------------------------------------------

    def _peek_line(self) -> Optional[LogicalLine]:
        if self.index < len(self.lines):
            return self.lines[self.index]
        return None

    def _next_line(self) -> LogicalLine:
        line = self.lines[self.index]
        self.index += 1
        return line

    # -- unit structure ------------------------------------------------------------

    def parse(self) -> ProgramUnit:
        kind, name, params, result_type, lineno = self._parse_header()
        decls: list[Stmt] = []
        body: list[Stmt] = []
        in_decls = True
        while True:
            line = self._peek_line()
            if line is None:
                raise ParseError(f"missing END for unit {name}", lineno)
            if _is_end_statement(line.text):
                self._next_line()
                break
            if in_decls and self._line_is_declaration(line):
                decls.append(self._parse_declaration(self._next_line()))
                continue
            in_decls = False
            body.extend(self._parse_statement_group())
        return ProgramUnit(
            kind=kind,
            name=name,
            params=params,
            decls=decls,
            body=body,
            result_type=result_type,
            lineno=lineno,
        )

    def _parse_header(self) -> tuple[str, str, list[str], Optional[str], int]:
        line = self._peek_line()
        if line is None:
            raise ParseError("empty unit")
        cur = _Cursor(line)
        tok = cur.peek()
        result_type: Optional[str] = None
        if tok.is_name("program"):
            self._next_line()
            cur.next()
            name = cur.expect_name().text
            cur.require_eof()
            return "program", name, [], None, line.lineno
        if tok.is_name("subroutine"):
            self._next_line()
            cur.next()
            name = cur.expect_name().text
            params = self._parse_params(cur)
            cur.require_eof()
            return "subroutine", name, params, None, line.lineno
        # typed or untyped FUNCTION
        words = [t for t in cur.tokens if t.kind is TokKind.NAME]
        if any(t.text == "function" for t in words[:3]):
            self._next_line()
            first = cur.next()
            if first.text in _TYPE_NAMES or first.text == "double":
                result_type = first.text
                if first.text == "double":
                    cur.expect_name("precision")
                    result_type = "doubleprecision"
                cur.expect_name("function")
            elif first.text != "function":
                raise cur.error(f"bad function header at {first}")
            name = cur.expect_name().text
            params = self._parse_params(cur)
            cur.require_eof()
            return "function", name, params, result_type, line.lineno
        # headerless: an implicit main program
        return "program", "main", [], None, line.lineno

    @staticmethod
    def _parse_params(cur: _Cursor) -> list[str]:
        params: list[str] = []
        if cur.accept(TokKind.LPAREN):
            if not cur.accept(TokKind.RPAREN):
                while True:
                    params.append(cur.expect_name().text)
                    if cur.accept(TokKind.RPAREN):
                        break
                    cur.expect(TokKind.COMMA)
        return params

    # -- declarations ------------------------------------------------------------------

    @staticmethod
    def _line_is_declaration(line: LogicalLine) -> bool:
        words = line.text.replace("*", " ").replace("(", " ").split()
        if not words:
            return False
        head = words[0]
        if head == "double" and len(words) > 1 and words[1] == "precision":
            return True
        if head in _DECL_KEYWORDS:
            # "real x" is a declaration; "real = 2" is an assignment to a
            # variable named real — distinguish by the '=' position
            cur = tokenize(line.text, line.lineno)
            if len(cur) > 1 and cur[1].kind is TokKind.ASSIGN:
                return False
            return True
        return False

    def _parse_declaration(self, line: LogicalLine) -> Stmt:
        cur = _Cursor(line)
        head = cur.expect_name().text
        if head == "double":
            cur.expect_name("precision")
            head = "doubleprecision"
        if head in _TYPE_NAMES:
            # optional *len
            if cur.accept(TokKind.STAR):
                if not (cur.accept(TokKind.INT) or cur.accept(TokKind.LPAREN)):
                    raise cur.error("bad length specifier")
                # skip "(...)" length forms
                depth = 1 if cur.tokens[cur.pos - 1].kind is TokKind.LPAREN else 0
                while depth:
                    tok = cur.next()
                    if tok.kind is TokKind.LPAREN:
                        depth += 1
                    elif tok.kind is TokKind.RPAREN:
                        depth -= 1
            entities = self._parse_entity_list(cur)
            cur.require_eof()
            return Declaration(head, entities, label=line.label, lineno=line.lineno)
        if head == "dimension":
            entities = self._parse_entity_list(cur)
            cur.require_eof()
            return DimensionStmt(entities, label=line.label, lineno=line.lineno)
        if head == "parameter":
            cur.expect(TokKind.LPAREN)
            bindings: list[tuple[str, Expr]] = []
            while True:
                name = cur.expect_name().text
                cur.expect(TokKind.ASSIGN)
                bindings.append((name, self._parse_expr(cur)))
                if cur.accept(TokKind.RPAREN):
                    break
                cur.expect(TokKind.COMMA)
            cur.require_eof()
            return ParameterStmt(bindings, label=line.label, lineno=line.lineno)
        if head == "common":
            block = ""
            if cur.accept(TokKind.SLASH):
                block = cur.expect_name().text
                cur.expect(TokKind.SLASH)
            entities = self._parse_entity_list(cur)
            cur.require_eof()
            return CommonStmt(block, entities, label=line.label, lineno=line.lineno)
        # implicit / external / intrinsic / data / save: keep the raw text
        return MiscDecl(head, line.text, label=line.label, lineno=line.lineno)

    def _parse_entity_list(self, cur: _Cursor) -> list[tuple[str, list[Expr]]]:
        entities: list[tuple[str, list[Expr]]] = []
        while True:
            name = cur.expect_name().text
            dims: list[Expr] = []
            if cur.accept(TokKind.LPAREN):
                while True:
                    dims.append(self._parse_dim_declarator(cur))
                    if cur.accept(TokKind.RPAREN):
                        break
                    cur.expect(TokKind.COMMA)
            entities.append((name, dims))
            if not cur.accept(TokKind.COMMA):
                break
        return entities

    def _parse_dim_declarator(self, cur: _Cursor) -> Expr:
        if cur.peek().kind is TokKind.STAR:
            cur.next()
            return NameRef("*")
        lo = self._parse_expr(cur)
        if cur.accept(TokKind.COLON):
            if cur.peek().kind is TokKind.STAR:
                cur.next()
                return RangeSub(lo, NameRef("*"))
            hi = self._parse_expr(cur)
            return RangeSub(lo, hi)
        return lo

    # -- statements -----------------------------------------------------------------------

    def _parse_statement_group(self) -> list[Stmt]:
        """Parse the next statement (and any block it heads)."""
        stmt = self._parse_one()
        return [stmt] if stmt is not None else []

    def _parse_one(self) -> Optional[Stmt]:
        line = self._next_line()
        return self._parse_line(line)

    def _parse_line(self, line: LogicalLine) -> Optional[Stmt]:
        cur = _Cursor(line)
        tok = cur.peek()
        if tok.kind is not TokKind.NAME:
            raise cur.error(f"cannot parse statement starting with {tok}")
        text = tok.text
        if text == "if":
            return self._parse_if(cur, line)
        if text == "do" and not self._looks_like_assignment(cur):
            return self._parse_do(cur, line)
        if text == "goto":
            cur.next()
            target = int(cur.expect(TokKind.INT).text)
            cur.require_eof()
            return Goto(target, label=line.label, lineno=line.lineno)
        if text == "go" and cur.peek(1).is_name("to"):
            cur.next()
            cur.next()
            target = int(cur.expect(TokKind.INT).text)
            cur.require_eof()
            return Goto(target, label=line.label, lineno=line.lineno)
        if text == "call" and not self._looks_like_assignment(cur):
            return self._parse_call(cur, line)
        if text == "continue" and cur.peek(1).kind is TokKind.EOF:
            cur.next()
            return Continue(label=line.label, lineno=line.lineno)
        if text == "return" and cur.peek(1).kind is TokKind.EOF:
            cur.next()
            return Return(label=line.label, lineno=line.lineno)
        if text == "stop":
            return Stop(label=line.label, lineno=line.lineno)
        if text in ("write", "print", "read") and not self._looks_like_assignment(cur):
            return self._parse_io(cur, line)
        if text in ("enddo", "endif", "else", "elseif") or (
            text == "end" and cur.peek(1).is_name("do", "if")
        ):
            raise cur.error(f"unexpected block terminator {text!r}")
        if self._line_is_declaration(line):
            # tolerated late declaration
            return self._parse_declaration(line)
        return self._parse_assignment(cur, line)

    @staticmethod
    def _looks_like_assignment(cur: _Cursor) -> bool:
        """Heuristic: NAME '=' or NAME '(' ... ')' '=' begins an assignment.

        Needed because e.g. ``do`` / ``call`` / ``write`` are legal variable
        names in Fortran.
        """
        if cur.peek(1).kind is TokKind.ASSIGN:
            # "do i = 1, 10" also matches NAME '=' after consuming 'do i';
            # here we test the *first* token, so 'do = 3' is an assignment
            return True
        if cur.peek(1).kind is TokKind.LPAREN:
            depth = 0
            i = 1
            while True:
                tok = cur.peek(i)
                if tok.kind is TokKind.EOF:
                    return False
                if tok.kind is TokKind.LPAREN:
                    depth += 1
                elif tok.kind is TokKind.RPAREN:
                    depth -= 1
                    if depth == 0:
                        return cur.peek(i + 1).kind is TokKind.ASSIGN
                i += 1
        return False

    def _parse_assignment(self, cur: _Cursor, line: LogicalLine) -> Assign:
        target = self._parse_primary(cur)
        if not isinstance(target, (NameRef, Apply)):
            raise cur.error(f"bad assignment target {target}")
        cur.expect(TokKind.ASSIGN, "'='")
        value = self._parse_expr(cur)
        cur.require_eof()
        return Assign(target, value, label=line.label, lineno=line.lineno)

    def _parse_call(self, cur: _Cursor, line: LogicalLine) -> CallStmt:
        cur.next()  # 'call'
        name = cur.expect_name().text
        args: list[Expr] = []
        if cur.accept(TokKind.LPAREN):
            if not cur.accept(TokKind.RPAREN):
                while True:
                    args.append(self._parse_expr(cur))
                    if cur.accept(TokKind.RPAREN):
                        break
                    cur.expect(TokKind.COMMA)
        cur.require_eof()
        return CallStmt(name, args, label=line.label, lineno=line.lineno)

    def _parse_io(self, cur: _Cursor, line: LogicalLine) -> IoStmt:
        kind = cur.next().text
        items: list[Expr] = []
        if kind in ("write", "read") and cur.accept(TokKind.LPAREN):
            # skip the control list (unit, format, ...)
            depth = 1
            while depth:
                tok = cur.next()
                if tok.kind is TokKind.EOF:
                    raise cur.error("unterminated I/O control list")
                if tok.kind is TokKind.LPAREN:
                    depth += 1
                elif tok.kind is TokKind.RPAREN:
                    depth -= 1
        elif kind == "print":
            # PRINT fmt, items — skip the format designator
            if cur.peek().kind in (TokKind.STAR, TokKind.INT, TokKind.STRING):
                cur.next()
            if not cur.accept(TokKind.COMMA) and not cur.at_eof():
                raise cur.error("bad PRINT statement")
        while not cur.at_eof():
            items.append(self._parse_expr(cur))
            if not cur.accept(TokKind.COMMA):
                break
        cur.require_eof()
        return IoStmt(kind, items, label=line.label, lineno=line.lineno)

    # -- IF forms ----------------------------------------------------------------------------

    def _parse_if(self, cur: _Cursor, line: LogicalLine) -> Stmt:
        cur.next()  # 'if'
        cur.expect(TokKind.LPAREN)
        cond = self._parse_expr(cur)
        cur.expect(TokKind.RPAREN)
        if cur.accept_name("then"):
            cur.require_eof()
            return self._parse_if_block(cond, line)
        # logical IF: the rest of the line is one statement
        rest_text = _remaining_text(cur)
        inner_line = LogicalLine(rest_text, None, line.lineno)
        inner = self._parse_line(inner_line)
        if inner is None or isinstance(inner, (IfBlock, LogicalIf, DoLoop)):
            raise cur.error("illegal statement in logical IF")
        return LogicalIf(cond, inner, label=line.label, lineno=line.lineno)

    def _parse_if_block(self, cond: Expr, line: LogicalLine) -> IfBlock:
        arms: list[tuple[Expr, list[Stmt]]] = [(cond, [])]
        orelse: list[Stmt] = []
        current = arms[0][1]
        while True:
            nxt = self._peek_line()
            if nxt is None:
                raise ParseError("missing ENDIF", line.lineno)
            cur = _Cursor(nxt)
            tok = cur.peek()
            if tok.is_name("endif") or (
                tok.is_name("end") and cur.peek(1).is_name("if")
            ):
                self._next_line()
                break
            if tok.is_name("elseif") or (
                tok.is_name("else") and cur.peek(1).is_name("if")
            ):
                self._next_line()
                cur.next()
                if cur.peek().is_name("if"):
                    cur.next()
                cur.expect(TokKind.LPAREN)
                arm_cond = self._parse_expr(cur)
                cur.expect(TokKind.RPAREN)
                cur.expect_name("then")
                cur.require_eof()
                arms.append((arm_cond, []))
                current = arms[-1][1]
                continue
            if tok.is_name("else") and cur.peek(1).kind is TokKind.EOF:
                self._next_line()
                current = orelse
                continue
            stmt = self._parse_one()
            if stmt is not None:
                current.append(stmt)
        return IfBlock(arms, orelse, label=line.label, lineno=line.lineno)

    # -- DO loops ----------------------------------------------------------------------------

    def _parse_do(self, cur: _Cursor, line: LogicalLine) -> DoLoop:
        cur.next()  # 'do'
        end_label: Optional[int] = None
        lbl = cur.accept(TokKind.INT)
        if lbl is not None:
            end_label = int(lbl.text)
        var = cur.expect_name().text
        cur.expect(TokKind.ASSIGN)
        start = self._parse_expr(cur)
        cur.expect(TokKind.COMMA)
        stop = self._parse_expr(cur)
        step: Optional[Expr] = None
        if cur.accept(TokKind.COMMA):
            step = self._parse_expr(cur)
        cur.require_eof()
        body: list[Stmt] = []
        if end_label is None:
            while True:
                nxt = self._peek_line()
                if nxt is None:
                    raise ParseError("missing ENDDO", line.lineno)
                c2 = _Cursor(nxt)
                if c2.peek().is_name("enddo") or (
                    c2.peek().is_name("end") and c2.peek(1).is_name("do")
                ):
                    self._next_line()
                    if nxt.label is not None:
                        # "1 ENDDO": a GOTO to this label jumps to the loop
                        # bottom — keep it addressable as a trailing CONTINUE
                        body.append(Continue(label=nxt.label, lineno=nxt.lineno))
                    break
                stmt = self._parse_one()
                if stmt is not None:
                    body.append(stmt)
        else:
            self._pending_do_labels.append(end_label)
            while True:
                nxt = self._peek_line()
                if nxt is None:
                    raise ParseError(
                        f"missing terminator label {end_label}", line.lineno
                    )
                if nxt.label == end_label:
                    break
                stmt = self._parse_one()
                if stmt is not None:
                    body.append(stmt)
            self._pending_do_labels.pop()
            shared = end_label in self._pending_do_labels
            if not shared:
                terminator = self._parse_one()
                if terminator is not None:
                    body.append(terminator)
            else:
                # the enclosing DO with the same label will consume it; this
                # loop body ends with an implicit CONTINUE
                body.append(Continue(label=None, lineno=nxt.lineno))
        return DoLoop(
            var,
            start,
            stop,
            step,
            body,
            end_label=end_label,
            label=line.label,
            lineno=line.lineno,
        )

    # -- expressions ----------------------------------------------------------------------------

    def _parse_expr(self, cur: _Cursor) -> Expr:
        return self._parse_eqv(cur)

    def _parse_eqv(self, cur: _Cursor) -> Expr:
        left = self._parse_or(cur)
        while cur.peek().kind in (TokKind.EQV, TokKind.NEQV):
            op = cur.next()
            right = self._parse_or(cur)
            left = BinOp(op.kind.value, left, right)
        return left

    def _parse_or(self, cur: _Cursor) -> Expr:
        left = self._parse_and(cur)
        while cur.accept(TokKind.OR):
            right = self._parse_and(cur)
            left = BinOp(".or.", left, right)
        return left

    def _parse_and(self, cur: _Cursor) -> Expr:
        left = self._parse_not(cur)
        while cur.accept(TokKind.AND):
            right = self._parse_not(cur)
            left = BinOp(".and.", left, right)
        return left

    def _parse_not(self, cur: _Cursor) -> Expr:
        if cur.accept(TokKind.NOT):
            return UnOp(".not.", self._parse_not(cur))
        return self._parse_relational(cur)

    def _parse_relational(self, cur: _Cursor) -> Expr:
        left = self._parse_additive(cur)
        kind = cur.peek().kind
        if kind in _REL_OPS:
            cur.next()
            right = self._parse_additive(cur)
            return BinOp(_REL_OPS[kind], left, right)
        return left

    def _parse_additive(self, cur: _Cursor) -> Expr:
        if cur.peek().kind is TokKind.MINUS:
            cur.next()
            left: Expr = UnOp("-", self._parse_multiplicative(cur))
        elif cur.peek().kind is TokKind.PLUS:
            cur.next()
            left = self._parse_multiplicative(cur)
        else:
            left = self._parse_multiplicative(cur)
        while cur.peek().kind in (TokKind.PLUS, TokKind.MINUS):
            op = cur.next()
            right = self._parse_multiplicative(cur)
            left = BinOp(op.text, left, right)
        return left

    def _parse_multiplicative(self, cur: _Cursor) -> Expr:
        left = self._parse_power(cur)
        while cur.peek().kind in (TokKind.STAR, TokKind.SLASH):
            op = cur.next()
            right = self._parse_power(cur)
            left = BinOp(op.text, left, right)
        return left

    def _parse_power(self, cur: _Cursor) -> Expr:
        base = self._parse_primary(cur)
        if cur.accept(TokKind.POWER):
            exponent = self._parse_power(cur)  # right-associative
            return BinOp("**", base, exponent)
        return base

    def _parse_primary(self, cur: _Cursor) -> Expr:
        tok = cur.peek()
        if tok.kind is TokKind.INT:
            cur.next()
            return IntLit(int(tok.text))
        if tok.kind is TokKind.REAL:
            cur.next()
            return RealLit(tok.text)
        if tok.kind is TokKind.STRING:
            cur.next()
            return StringLit(tok.text)
        if tok.kind is TokKind.TRUE:
            cur.next()
            return LogicalLit(True)
        if tok.kind is TokKind.FALSE:
            cur.next()
            return LogicalLit(False)
        if tok.kind is TokKind.MINUS:
            cur.next()
            return UnOp("-", self._parse_primary(cur))
        if tok.kind is TokKind.LPAREN:
            cur.next()
            inner = self._parse_expr(cur)
            cur.expect(TokKind.RPAREN)
            return inner
        if tok.kind is TokKind.NAME:
            cur.next()
            if cur.accept(TokKind.LPAREN):
                args: list[Expr] = []
                if not cur.accept(TokKind.RPAREN):
                    while True:
                        args.append(self._parse_arg(cur))
                        if cur.accept(TokKind.RPAREN):
                            break
                        cur.expect(TokKind.COMMA)
                return Apply(tok.text, args)
            return NameRef(tok.text)
        raise cur.error(f"unexpected token {tok} in expression")

    def _parse_arg(self, cur: _Cursor) -> Expr:
        """An actual argument / subscript, allowing ``lo:hi`` sections."""
        if cur.peek().kind is TokKind.COLON:
            cur.next()
            hi = self._parse_expr(cur)
            return RangeSub(None, hi)
        expr = self._parse_expr(cur)
        if cur.accept(TokKind.COLON):
            if cur.peek().kind in (TokKind.COMMA, TokKind.RPAREN):
                return RangeSub(expr, None)
            hi = self._parse_expr(cur)
            return RangeSub(expr, hi)
        return expr


def _remaining_text(cur: _Cursor) -> str:
    """The untokenized remainder of the cursor's line (for logical IF)."""
    if cur.at_eof():
        raise cur.error("empty logical IF body")
    col = cur.peek().col
    return cur.line.text[col:]
