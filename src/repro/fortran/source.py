"""Raw Fortran source normalization.

Handles the mechanical pre-lexing concerns of Fortran 77 style sources:

* comment lines (``C``/``c``/``*`` in column 1) and trailing ``!`` comments,
* fixed-form continuation (non-blank, non-zero column 6) and free-form
  trailing ``&`` continuation,
* statement labels in columns 1–5 (or leading digits in free form),
* case normalization (lower-cased outside character literals).

The output is a list of :class:`LogicalLine` — one per statement, with its
label (if any) and the 1-based line number of its first physical line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SourceError


@dataclass(frozen=True)
class LogicalLine:
    """One logical Fortran statement line."""

    text: str
    label: int | None
    lineno: int


def _is_comment(raw: str) -> bool:
    if not raw.strip():
        return True
    first = raw[0]
    if first in "Cc*!":
        return True
    return raw.lstrip().startswith("!")


def _strip_inline_comment(text: str) -> str:
    """Remove a trailing ``!`` comment, respecting character literals."""
    out = []
    quote: str | None = None
    for ch in text:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            out.append(ch)
            continue
        if ch == "!":
            break
        out.append(ch)
    return "".join(out)


def _lowercase_outside_strings(text: str) -> str:
    out = []
    quote: str | None = None
    for ch in text:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            out.append(ch)
        else:
            out.append(ch.lower())
    return "".join(out)


def normalize(source: str) -> list[LogicalLine]:
    """Split *source* into logical statement lines.

    Both fixed-form (column-6 continuation) and free-form (trailing ``&``)
    inputs are accepted; the two may be mixed line-by-line, which keeps the
    kernel sources in :mod:`repro.kernels` readable.
    """
    logical: list[LogicalLine] = []
    pending_text: str | None = None
    pending_label: int | None = None
    pending_lineno = 0
    pending_continues = False

    def flush() -> None:
        nonlocal pending_text, pending_label, pending_continues
        if pending_text is not None and pending_text.strip():
            logical.append(
                LogicalLine(pending_text.strip(), pending_label, pending_lineno)
            )
        pending_text = None
        pending_label = None
        pending_continues = False

    for lineno, raw in enumerate(source.splitlines(), start=1):
        raw = raw.rstrip("\n")
        if _is_comment(raw):
            continue
        line = _strip_inline_comment(raw)
        if not line.strip():
            continue
        # fixed-form continuation: column 6 non-blank & non-zero, cols 1-5 blank
        is_fixed_cont = (
            len(line) >= 6
            and line[:5].strip() == ""
            and line[5] not in " 0"
            and pending_text is not None
        )
        if is_fixed_cont:
            pending_text += " " + line[6:].strip()
            continue
        if pending_continues and pending_text is not None:
            pending_text += " " + line.strip().lstrip("&").strip()
            if pending_text.rstrip().endswith("&"):
                pending_text = pending_text.rstrip()[:-1].rstrip()
                pending_continues = True
            else:
                pending_continues = False
            continue
        flush()
        body = line
        label: int | None = None
        stripped = body.strip()
        # a leading integer is a statement label
        i = 0
        while i < len(stripped) and stripped[i].isdigit():
            i += 1
        if i > 0 and i < len(stripped) and stripped[i] in " \t":
            label = int(stripped[:i])
            stripped = stripped[i:].strip()
        elif i > 0 and i == len(stripped):
            raise SourceError(f"label with no statement at line {lineno}")
        pending_text = _lowercase_outside_strings(stripped)
        pending_label = label
        pending_lineno = lineno
        if pending_text.rstrip().endswith("&"):
            pending_text = pending_text.rstrip()[:-1].rstrip()
            pending_continues = True
    flush()
    return logical
