"""A concrete interpreter for the Fortran subset.

Executes programs over the HSG flow graphs (control flow — GOTOs,
RETURNs, IF arms — is already resolved there), with Fortran
call-by-reference semantics: arrays and scalars are storage cells shared
between caller and callee.

Primary purpose: **empirical validation of the analysis**.  The
interpreter reports every array/scalar read and write through observer
hooks, so the test suite can compare actual per-iteration access sets
against the symbolic ``MOD_i``/``UE_i`` summaries and check privatization
verdicts against real cross-iteration value flow
(see ``tests/integration/test_soundness.py``).

Unsupported (raises :class:`InterpreterError`): condensed GOTO cycles,
loops with premature exits, READ statements, character data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ReproError
from .ast_nodes import (
    Apply,
    Assign,
    BinOp,
    Continue,
    Declaration,
    DimensionStmt,
    Expr,
    IntLit,
    IoStmt,
    LogicalLit,
    MiscDecl,
    NameRef,
    ParameterStmt,
    CommonStmt,
    RealLit,
    StringLit,
    UnOp,
)
from .semantics import AnalyzedProgram, SymbolTable


class InterpreterError(ReproError):
    """Program uses a feature the interpreter does not support."""


@dataclass
class ScalarCell:
    """A mutable scalar storage cell (call-by-reference)."""

    name: str
    value: object = 0

    def get(self):
        """Current value."""
        return self.value

    def set(self, value) -> None:
        """Store a value."""
        self.value = value


@dataclass
class ArrayStorage:
    """Array storage keyed by raw index tuples (bounds are not checked —
    the analysis itself is the subject under test, not the program)."""

    name: str
    rank: int
    cells: dict[tuple[int, ...], object] = field(default_factory=dict)

    def get(self, idx: tuple[int, ...]):
        """Current value."""
        return self.cells.get(idx, 0.0)

    def set(self, idx: tuple[int, ...], value) -> None:
        """Store a value."""
        self.cells[idx] = value


@dataclass
class AccessEvent:
    """One dynamic access, as reported to observers."""

    kind: str  # 'read' | 'write'
    name: str  # the name at the access site (callee-local for formals)
    index: tuple[int, ...]  # () for scalars
    is_array: bool
    #: the storage object — identity maps accesses back to *caller*
    #: variables across call-by-reference boundaries
    storage: object = None


Observer = Callable[[AccessEvent], None]

_INTRINSICS: dict[str, Callable] = {
    "abs": abs, "iabs": abs, "dabs": abs,
    "max": max, "max0": max, "amax1": max, "dmax1": max,
    "min": min, "min0": min, "amin1": min, "dmin1": min,
    "mod": lambda a, b: math.fmod(a, b) if isinstance(a, float) else a % b,
    "amod": math.fmod, "dmod": math.fmod,
    "sqrt": math.sqrt, "dsqrt": math.sqrt,
    "exp": math.exp, "dexp": math.exp,
    "log": math.log, "alog": math.log, "dlog": math.log,
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "dsin": math.sin, "dcos": math.cos,
    "atan": math.atan, "atan2": math.atan2, "datan": math.atan,
    "int": int, "ifix": int, "idint": int,
    "float": float, "real": float, "dble": float, "sngl": float,
    "nint": lambda x: int(round(x)), "idnint": lambda x: int(round(x)),
    "sign": lambda a, b: abs(a) if b >= 0 else -abs(a),
    "isign": lambda a, b: abs(a) if b >= 0 else -abs(a),
}


class Frame:
    """One routine activation: name → storage object."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.storage: dict[str, object] = {}

    def cell(self, name: str) -> ScalarCell:
        """The scalar cell for *name*, created on first use."""
        obj = self.storage.get(name)
        if obj is None:
            obj = ScalarCell(name, 0 if name[0] in "ijklmn" else 0.0)
            self.storage[name] = obj
        if not isinstance(obj, ScalarCell):
            raise InterpreterError(f"{name} used as both scalar and array")
        return obj

    def array(self, name: str) -> ArrayStorage:
        """The array storage for *name*, created on first use."""
        obj = self.storage.get(name)
        if obj is None:
            info = self.table.arrays.get(name)
            rank = info.rank if info else 1
            obj = ArrayStorage(name, rank)
            self.storage[name] = obj
        if not isinstance(obj, ArrayStorage):
            raise InterpreterError(f"{name} used as both array and scalar")
        return obj


class Interpreter:
    """Executes an analyzed program over its HSG."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        observer: Optional[Observer] = None,
        loop_hook: Optional[Callable] = None,
        max_steps: int = 5_000_000,
        hsg=None,
    ) -> None:
        from ..hsg import build_hsg  # local import: avoid cycles

        self.analyzed = analyzed
        self.hsg = hsg if hsg is not None else build_hsg(analyzed)
        self.observer = observer
        #: loop_hook(routine, loop_node, index_value, phase) with phase in
        #: {'iter', 'exit'} — lets validators bucket accesses per iteration
        #: and distinguish same-named loops by node identity
        self.loop_hook = loop_hook
        self.max_steps = max_steps
        self.steps = 0
        self.commons: dict[tuple[str, str], object] = {}

    # -- entry points ------------------------------------------------------------

    def run_main(self) -> Frame:
        """Execute the main program; returns its frame."""
        main = self.analyzed.program.main()
        frame = self._fresh_frame(main.name)
        self._run_unit(main.name, frame)
        return frame

    def run_routine(self, name: str, **args) -> Frame:
        """Run one routine with Python values for its dummy arguments.

        Scalars: ints/floats/bools.  Arrays: dicts ``{(i, ...): value}``
        or lists (1-based 1-D).
        """
        unit = self.analyzed.unit(name)
        table = self.analyzed.table(name)
        frame = self._fresh_frame(name)
        for formal in unit.params:
            if formal not in args:
                continue
            value = args[formal]
            if table.is_array(formal):
                storage = ArrayStorage(formal, table.arrays[formal].rank)
                if isinstance(value, dict):
                    storage.cells.update(value)
                else:
                    for i, v in enumerate(value, start=1):
                        storage.cells[(i,)] = v
                frame.storage[formal] = storage
            else:
                frame.storage[formal] = ScalarCell(formal, value)
        self._run_unit(name, frame)
        return frame

    # -- frames --------------------------------------------------------------------

    def _fresh_frame(self, unit_name: str) -> Frame:
        table = self.analyzed.table(unit_name)
        frame = Frame(table)
        # bind COMMON members to program-wide storage
        for block, names in table.commons.items():
            for name in names:
                key = (block, name)
                if key not in self.commons:
                    if table.is_array(name):
                        self.commons[key] = ArrayStorage(
                            name, table.arrays[name].rank
                        )
                    else:
                        self.commons[key] = ScalarCell(name)
                frame.storage[name] = self.commons[key]
        return frame

    # -- graph execution ------------------------------------------------------------

    def _run_unit(self, unit_name: str, frame: Frame) -> None:
        self._run_graph(self.hsg.graph(unit_name), unit_name, frame)

    def _run_graph(self, graph, unit_name: str, frame: Frame) -> None:
        from ..hsg.nodes import (
            BasicBlockNode,
            CallNode,
            CondensedNode,
            EntryNode,
            ExitNode,
            IfConditionNode,
            LoopNode,
        )

        node = graph.entry
        while node is not None:
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpreterError("step budget exceeded")
            taken: Optional[bool] = None
            if isinstance(node, ExitNode):
                return
            if isinstance(node, CondensedNode):
                raise InterpreterError(
                    "cannot execute a condensed GOTO cycle"
                )
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    self._exec_simple(stmt, frame)
            elif isinstance(node, IfConditionNode):
                taken = bool(self._eval(node.cond, frame))
            elif isinstance(node, LoopNode):
                self._exec_loop(node, unit_name, frame)
            elif isinstance(node, CallNode):
                self._exec_call(node, frame)
            # choose the successor
            succs = graph.succs(node)
            if taken is None:
                if not succs:
                    return
                if len(succs) > 1:
                    raise InterpreterError(
                        f"ambiguous control flow at {node.describe()}"
                    )
                node = succs[0][0]
            else:
                matching = [d for d, label in succs if label is taken]
                if not matching:
                    matching = [d for d, label in succs if label is None]
                if len(matching) != 1:
                    raise InterpreterError(
                        f"bad branch structure at {node.describe()}"
                    )
                node = matching[0]

    def _exec_loop(self, loop, unit_name: str, frame: Frame) -> None:
        if loop.has_premature_exit:
            raise InterpreterError(
                f"loop {loop.var} has a premature exit; not executable"
            )
        lo = self._eval(loop.start, frame)
        hi = self._eval(loop.stop, frame)
        step = self._eval(loop.step, frame) if loop.step is not None else 1
        if step == 0:
            raise InterpreterError("zero DO step")
        index_cell = frame.cell(loop.var)
        value = int(lo)
        while (value <= hi) if step > 0 else (value >= hi):
            index_cell.set(value)
            if self.loop_hook:
                self.loop_hook(unit_name, loop, value, "iter")
            # the header's index update is a real write (observed so trace
            # validators see index reads as covered)
            self._notify("write", loop.var, (), False, index_cell)
            self._run_graph(loop.body, unit_name, frame)
            value += int(step)
        index_cell.set(value)
        self._notify("write", loop.var, (), False, index_cell)
        if self.loop_hook:
            self.loop_hook(unit_name, loop, value, "exit")

    def _exec_call(self, node, frame: Frame) -> None:
        callee = node.callee
        if callee not in self.analyzed.unit_names():
            raise InterpreterError(f"call to external routine {callee}")
        unit = self.analyzed.unit(callee)
        callee_frame = self._fresh_frame(callee)
        if len(node.call.args) > len(unit.params):
            raise InterpreterError(f"too many arguments to {callee}")
        for formal, actual in zip(unit.params, node.call.args):
            callee_frame.storage[formal] = self._argument_storage(
                actual, frame, formal, callee
            )
        self._run_unit(callee, callee_frame)

    def _argument_storage(self, actual: Expr, frame: Frame, formal: str,
                          callee: str):
        callee_table = self.analyzed.table(callee)
        if isinstance(actual, NameRef):
            if frame.table.is_array(actual.name):
                return frame.array(actual.name)
            if callee_table.is_array(formal):
                raise InterpreterError(
                    f"scalar {actual.name} passed for array formal {formal}"
                )
            return frame.cell(actual.name)
        if isinstance(actual, Apply) and actual.is_array:
            raise InterpreterError(
                "array-element actual arguments are not supported"
            )
        # expression actual: pass a fresh cell holding the value
        return ScalarCell(formal, self._eval(actual, frame))

    # -- statements ------------------------------------------------------------------

    def _exec_simple(self, stmt, frame: Frame) -> None:
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, frame)
            target = stmt.target
            if isinstance(target, Apply):
                idx = tuple(int(self._eval(a, frame)) for a in target.args)
                storage = frame.array(target.name)
                storage.set(idx, value)
                self._notify("write", target.name, idx, True, storage)
            else:
                cell = frame.cell(target.name)
                cell.set(value)
                self._notify("write", target.name, (), False, cell)
            return
        if isinstance(stmt, Continue):
            return
        if isinstance(stmt, IoStmt):
            if stmt.kind == "read":
                raise InterpreterError("READ is not supported")
            for item in stmt.items:
                self._eval(item, frame)  # reads observed
            return
        if isinstance(
            stmt, (MiscDecl, Declaration, DimensionStmt, ParameterStmt,
                   CommonStmt)
        ):
            return
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _notify(self, kind, name, idx, is_array, storage):
        if self.observer:
            self.observer(AccessEvent(kind, name, idx, is_array, storage))

    # -- expressions --------------------------------------------------------------------

    def _eval(self, expr: Expr, frame: Frame):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, RealLit):
            return float(expr.text.replace("d", "e").rstrip("e") or 0)
        if isinstance(expr, LogicalLit):
            return expr.value
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, NameRef):
            if expr.name in frame.table.parameters:
                return self._eval(frame.table.parameters[expr.name], frame)
            if frame.table.is_array(expr.name):
                raise InterpreterError(f"array {expr.name} used as a value")
            cell = frame.cell(expr.name)
            self._notify("read", expr.name, (), False, cell)
            return cell.get()
        if isinstance(expr, Apply):
            if expr.is_array:
                idx = tuple(int(self._eval(a, frame)) for a in expr.args)
                storage = frame.array(expr.name)
                self._notify("read", expr.name, idx, True, storage)
                return storage.get(idx)
            fn = _INTRINSICS.get(expr.name)
            if fn is None:
                raise InterpreterError(
                    f"user function calls not supported: {expr.name}"
                )
            return fn(*(self._eval(a, frame) for a in expr.args))
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == ".not.":
                return not value
            raise InterpreterError(f"bad unary {expr.op}")
        if isinstance(expr, BinOp):
            op = expr.op
            if op == ".and.":
                return bool(self._eval(expr.left, frame)) and bool(
                    self._eval(expr.right, frame)
                )
            if op == ".or.":
                return bool(self._eval(expr.left, frame)) or bool(
                    self._eval(expr.right, frame)
                )
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    q = abs(left) // abs(right)
                    return q if (left >= 0) == (right >= 0) else -q
                return left / right
            if op == "**":
                return left ** right
            if op == ".eq.":
                return left == right
            if op == ".ne.":
                return left != right
            if op == ".lt.":
                return left < right
            if op == ".le.":
                return left <= right
            if op == ".gt.":
                return left > right
            if op == ".ge.":
                return left >= right
            if op == ".eqv.":
                return bool(left) == bool(right)
            if op == ".neqv.":
                return bool(left) != bool(right)
            raise InterpreterError(f"bad operator {op}")
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")


def run_program(source: str, observer: Optional[Observer] = None) -> Frame:
    """Parse, analyze, and execute a whole program (convenience)."""
    from .parser import parse_program
    from .semantics import analyze

    interp = Interpreter(analyze(parse_program(source)), observer)
    return interp.run_main()
