"""Tokenizer for the Fortran-77 subset.

Operates on one already-normalized logical line at a time (see
:mod:`repro.fortran.source`).  Token-level quirks handled here:

* ``**`` vs ``*``, ``//`` vs ``/``;
* dotted operators ``.eq.`` ``.and.`` ... and logical constants;
* free-form relational spellings ``==`` ``/=`` ``<=`` etc.;
* integer vs real literals (a ``.`` followed by a letter starts a dotted
  operator, not a real literal — ``1.eq.2`` lexes as ``1 .eq. 2``).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import DOT_OPERATORS, FREEFORM_RELOPS, TokKind, Token


def tokenize(text: str, lineno: int = 0) -> list[Token]:
    """Tokenize one logical line; appends an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        start = i
        if ch == ".":
            # dotted operator?
            j = text.find(".", i + 1)
            if j != -1:
                word = text[i : j + 1]
                kind = DOT_OPERATORS.get(word)
                if kind is not None:
                    tokens.append(Token(kind, word, lineno, start))
                    i = j + 1
                    continue
            if i + 1 < n and text[i + 1].isdigit():
                i = _lex_number(text, i, lineno, tokens)
                continue
            raise LexError(f"unexpected '.'", lineno, start)
        if ch.isdigit():
            i = _lex_number(text, i, lineno, tokens)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokKind.NAME, text[i:j], lineno, start))
            i = j
            continue
        if ch in "'\"":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == ch:
                    if j + 1 < n and text[j + 1] == ch:  # escaped quote
                        buf.append(ch)
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            if j >= n:
                raise LexError("unterminated character literal", lineno, start)
            tokens.append(Token(TokKind.STRING, "".join(buf), lineno, start))
            i = j + 1
            continue
        two = text[i : i + 2]
        if two == "**":
            tokens.append(Token(TokKind.POWER, two, lineno, start))
            i += 2
            continue
        if two == "//":
            tokens.append(Token(TokKind.CONCAT, two, lineno, start))
            i += 2
            continue
        if two in FREEFORM_RELOPS:
            tokens.append(Token(FREEFORM_RELOPS[two], two, lineno, start))
            i += 2
            continue
        if ch in FREEFORM_RELOPS:
            tokens.append(Token(FREEFORM_RELOPS[ch], ch, lineno, start))
            i += 1
            continue
        simple = {
            "(": TokKind.LPAREN,
            ")": TokKind.RPAREN,
            ",": TokKind.COMMA,
            ":": TokKind.COLON,
            "=": TokKind.ASSIGN,
            "+": TokKind.PLUS,
            "-": TokKind.MINUS,
            "*": TokKind.STAR,
            "/": TokKind.SLASH,
        }
        kind = simple.get(ch)
        if kind is None:
            raise LexError(f"unexpected character {ch!r}", lineno, start)
        tokens.append(Token(kind, ch, lineno, start))
        i += 1
    tokens.append(Token(TokKind.EOF, "", lineno, n))
    return tokens


def _lex_number(text: str, i: int, lineno: int, tokens: list[Token]) -> int:
    """Lex an integer or real literal starting at *i*; returns the new index."""
    n = len(text)
    j = i
    while j < n and text[j].isdigit():
        j += 1
    is_real = False
    if j < n and text[j] == ".":
        # "1.eq.2": the dot starts an operator, not a fraction
        k = j + 1
        while k < n and text[k].isalpha():
            k += 1
        maybe_op = text[j : k + 1] if k < n else ""
        if maybe_op.endswith(".") and maybe_op in DOT_OPERATORS:
            tokens.append(Token(TokKind.INT, text[i:j], lineno, i))
            return j
        is_real = True
        j += 1
        while j < n and text[j].isdigit():
            j += 1
    if j < n and text[j] in "ed":
        # exponent part: e+10, d-3, e5
        k = j + 1
        if k < n and text[k] in "+-":
            k += 1
        if k < n and text[k].isdigit():
            is_real = True
            j = k
            while j < n and text[j].isdigit():
                j += 1
    kind = TokKind.REAL if is_real else TokKind.INT
    tokens.append(Token(kind, text[i:j], lineno, i))
    return j
