"""AST unparser — regenerates Fortran-ish source from the AST.

Used for diagnostics (the analysis reports quote statements), round-trip
tests of the parser, and the examples' pretty output.  The output is
free-form style with ``ENDDO``/``ENDIF`` terminators.
"""

from __future__ import annotations

from .ast_nodes import (
    Apply,
    Assign,
    CallStmt,
    CommonStmt,
    Continue,
    Declaration,
    DimensionStmt,
    DoLoop,
    Expr,
    Goto,
    IfBlock,
    IoStmt,
    LogicalIf,
    MiscDecl,
    ParameterStmt,
    Program,
    ProgramUnit,
    Return,
    Stmt,
    Stop,
)


def unparse_expr(expr: Expr) -> str:
    """Render an expression as Fortran text."""
    return str(expr)


def unparse_stmt(stmt: Stmt, indent: int = 0) -> list[str]:
    """Render one statement (plus nested blocks) as lines."""
    pad = "  " * indent
    label = f"{stmt.label} " if stmt.label is not None else ""

    def line(text: str) -> str:
        return f"{pad}{label}{text}"

    if isinstance(stmt, Assign):
        return [line(f"{stmt.target} = {stmt.value}")]
    if isinstance(stmt, CallStmt):
        args = ", ".join(str(a) for a in stmt.args)
        return [line(f"CALL {stmt.name}({args})")]
    if isinstance(stmt, IfBlock):
        out = [line(f"IF ({stmt.arms[0][0]}) THEN")]
        for s in stmt.arms[0][1]:
            out.extend(unparse_stmt(s, indent + 1))
        for cond, body in stmt.arms[1:]:
            out.append(f"{pad}ELSEIF ({cond}) THEN")
            for s in body:
                out.extend(unparse_stmt(s, indent + 1))
        if stmt.orelse:
            out.append(f"{pad}ELSE")
            for s in stmt.orelse:
                out.extend(unparse_stmt(s, indent + 1))
        out.append(f"{pad}ENDIF")
        return out
    if isinstance(stmt, LogicalIf):
        inner = unparse_stmt(stmt.stmt, 0)[0].strip()
        return [line(f"IF ({stmt.cond}) {inner}")]
    if isinstance(stmt, DoLoop):
        step = f", {stmt.step}" if stmt.step is not None else ""
        out = [line(f"DO {stmt.var} = {stmt.start}, {stmt.stop}{step}")]
        for s in stmt.body:
            out.extend(unparse_stmt(s, indent + 1))
        out.append(f"{pad}ENDDO")
        return out
    if isinstance(stmt, Goto):
        return [line(f"GOTO {stmt.target}")]
    if isinstance(stmt, Continue):
        return [line("CONTINUE")]
    if isinstance(stmt, Return):
        return [line("RETURN")]
    if isinstance(stmt, Stop):
        return [line("STOP")]
    if isinstance(stmt, IoStmt):
        items = ", ".join(str(i) for i in stmt.items)
        return [line(f"{stmt.kind.upper()} *, {items}")]
    if isinstance(stmt, Declaration):
        ents = ", ".join(
            name + (f"({', '.join(str(d) for d in dims)})" if dims else "")
            for name, dims in stmt.entities
        )
        return [line(f"{stmt.type_name.upper()} {ents}")]
    if isinstance(stmt, DimensionStmt):
        ents = ", ".join(
            f"{name}({', '.join(str(d) for d in dims)})"
            for name, dims in stmt.entities
        )
        return [line(f"DIMENSION {ents}")]
    if isinstance(stmt, ParameterStmt):
        binds = ", ".join(f"{n} = {v}" for n, v in stmt.bindings)
        return [line(f"PARAMETER ({binds})")]
    if isinstance(stmt, CommonStmt):
        ents = ", ".join(name for name, _ in stmt.entities)
        blk = f"/{stmt.block}/ " if stmt.block else ""
        return [line(f"COMMON {blk}{ents}")]
    if isinstance(stmt, MiscDecl):
        return [line(stmt.text.upper())]
    return [line(f"! <unprintable {type(stmt).__name__}>")]


def unparse_unit(unit: ProgramUnit) -> str:
    """Render a whole program unit."""
    header = {
        "program": f"PROGRAM {unit.name}",
        "subroutine": f"SUBROUTINE {unit.name}({', '.join(unit.params)})",
        "function": f"FUNCTION {unit.name}({', '.join(unit.params)})",
    }[unit.kind]
    if unit.kind == "function" and unit.result_type:
        header = f"{unit.result_type.upper()} {header}"
    lines = [header]
    for decl in unit.decls:
        lines.extend(unparse_stmt(decl, 1))
    for stmt in unit.body:
        lines.extend(unparse_stmt(stmt, 1))
    lines.append("END")
    return "\n".join(lines)


def unparse_program(program: Program) -> str:
    """Render every unit of a program."""
    return "\n\n".join(unparse_unit(u) for u in program.units)
