"""Call-graph construction and the acyclicity check (paper section 4).

The analysis assumes "the program contains no recursive calls"; this module
builds the call graph from ``CALL`` statements and resolved function
references, verifies it is a DAG, and provides the bottom-up order used by
interprocedural summary computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CallGraphError
from .ast_nodes import Apply, Assign, CallStmt, DoLoop, IfBlock, IoStmt, LogicalIf, Stmt
from .semantics import AnalyzedProgram


@dataclass
class CallGraph:
    """Edges between program-unit names; only calls to units defined in the
    program are recorded (externals are opaque)."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)  # bottom-up (callees first)

    def calls(self, caller: str) -> frozenset[str]:
        """The callees of *caller* defined within the program."""
        return frozenset(self.callees.get(caller, ()))

    def is_leaf(self, name: str) -> bool:
        """True when the unit calls no program-defined routine."""
        return not self.callees.get(name)


def _called_names(stmt: Stmt) -> set[str]:
    out: set[str] = set()
    if isinstance(stmt, CallStmt):
        out.add(stmt.name)
        exprs = stmt.args
    elif isinstance(stmt, Assign):
        exprs = [stmt.target, stmt.value]
    elif isinstance(stmt, IfBlock):
        exprs = [cond for cond, _ in stmt.arms]
    elif isinstance(stmt, LogicalIf):
        exprs = [stmt.cond]
    elif isinstance(stmt, DoLoop):
        exprs = [stmt.start, stmt.stop] + ([stmt.step] if stmt.step else [])
    elif isinstance(stmt, IoStmt):
        exprs = stmt.items
    else:
        exprs = []
    for expr in exprs:
        for node in expr.walk():
            if isinstance(node, Apply) and node.is_array is False:
                out.add(node.name)
    return out


def build_call_graph(analyzed: AnalyzedProgram) -> CallGraph:
    """Build and topologically order the call graph; raises on recursion."""
    graph = CallGraph()
    unit_names = analyzed.unit_names()
    for unit in analyzed.program.units:
        edges: set[str] = set()
        for stmt in unit.walk_statements():
            edges |= _called_names(stmt) & unit_names
        edges.discard(unit.name)  # direct self-recursion caught below too
        graph.callees[unit.name] = edges
        for callee in edges:
            graph.callers.setdefault(callee, set()).add(unit.name)
    for unit in analyzed.program.units:
        for stmt in unit.walk_statements():
            if unit.name in _called_names(stmt):
                raise CallGraphError(f"recursive call in {unit.name}")
    graph.order = _topological_bottom_up(graph, list(unit_names))
    return graph


def _topological_bottom_up(graph: CallGraph, names: list[str]) -> list[str]:
    """Callees before callers; raises :class:`CallGraphError` on cycles."""
    color: dict[str, int] = {}
    order: list[str] = []

    def visit(name: str, stack: list[str]) -> None:
        state = color.get(name, 0)
        if state == 1:
            cycle = " -> ".join(stack + [name])
            raise CallGraphError(f"recursive call chain: {cycle}")
        if state == 2:
            return
        color[name] = 1
        for callee in sorted(graph.callees.get(name, ())):
            visit(callee, stack + [name])
        color[name] = 2
        order.append(name)

    for name in sorted(names):
        visit(name, [])
    return order
