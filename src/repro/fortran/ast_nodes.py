"""AST node classes for the Fortran-77 subset.

Expressions and statements are small immutable-ish dataclasses.  Name
references are parsed as :class:`NameRef` (variable) or :class:`Apply`
(name followed by an argument list) — whether an ``Apply`` is an array
reference or a function call is resolved by :mod:`repro.fortran.semantics`
using the declaration tables, as required by Fortran's grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


@dataclass
class Expr:
    """Base class for expression nodes."""

    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Depth-first iteration over the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class RealLit(Expr):
    text: str

    def __str__(self) -> str:
        return self.text


@dataclass
class LogicalLit(Expr):
    value: bool

    def __str__(self) -> str:
        return ".TRUE." if self.value else ".FALSE."


@dataclass
class StringLit(Expr):
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class NameRef(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Apply(Expr):
    """``name(arg, ...)`` — array element or function call (see semantics)."""

    name: str
    args: list[Expr]
    is_array: Optional[bool] = None  # filled in by semantic analysis

    def children(self) -> Sequence[Expr]:
        """Direct sub-expressions."""
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass
class RangeSub(Expr):
    """An array-section subscript ``lo:hi`` (used in declarations)."""

    lo: Optional[Expr]
    hi: Optional[Expr]

    def children(self) -> Sequence[Expr]:
        """Direct sub-expressions."""
        return [e for e in (self.lo, self.hi) if e is not None]

    def __str__(self) -> str:
        lo = str(self.lo) if self.lo is not None else ""
        hi = str(self.hi) if self.hi is not None else ""
        return f"{lo}:{hi}"


@dataclass
class UnOp(Expr):
    op: str  # '-', '+', '.not.'
    operand: Expr

    def children(self) -> Sequence[Expr]:
        """Direct sub-expressions."""
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class BinOp(Expr):
    op: str  # '+', '-', '*', '/', '**', relationals, '.and.', '.or.', '.eqv.', '.neqv.'
    left: Expr
    right: Expr

    def children(self) -> Sequence[Expr]:
        """Direct sub-expressions."""
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #


@dataclass
class Stmt:
    """Base class for statement nodes."""

    label: Optional[int] = field(default=None, kw_only=True)
    lineno: int = field(default=0, kw_only=True)

    def body_blocks(self) -> Sequence[list["Stmt"]]:
        """Nested statement lists (for tree walks)."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Depth-first iteration over the subtree."""
        yield self
        for block in self.body_blocks():
            for stmt in block:
                yield from stmt.walk()


@dataclass
class Assign(Stmt):
    target: Union[NameRef, Apply]
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass
class CallStmt(Stmt):
    name: str
    args: list[Expr]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"CALL {self.name}({inner})"


@dataclass
class IfBlock(Stmt):
    """Structured IF/ELSEIF/ELSE/ENDIF."""

    arms: list[tuple[Expr, list[Stmt]]]  # (condition, body) for IF/ELSEIF
    orelse: list[Stmt]

    def body_blocks(self) -> Sequence[list[Stmt]]:
        """Nested statement lists (for tree walks)."""
        return [body for _, body in self.arms] + [self.orelse]

    def __str__(self) -> str:
        return f"IF ({self.arms[0][0]}) THEN ..."


@dataclass
class LogicalIf(Stmt):
    """``IF (cond) stmt`` — one-armed logical IF."""

    cond: Expr
    stmt: Stmt

    def body_blocks(self) -> Sequence[list[Stmt]]:
        """Nested statement lists (for tree walks)."""
        return ([self.stmt],)

    def __str__(self) -> str:
        return f"IF ({self.cond}) {self.stmt}"


@dataclass
class DoLoop(Stmt):
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]
    body: list[Stmt]
    end_label: Optional[int] = None

    def body_blocks(self) -> Sequence[list[Stmt]]:
        """Nested statement lists (for tree walks)."""
        return (self.body,)

    def __str__(self) -> str:
        step = f", {self.step}" if self.step is not None else ""
        return f"DO {self.var} = {self.start}, {self.stop}{step}"


@dataclass
class Goto(Stmt):
    target: int

    def __str__(self) -> str:
        return f"GOTO {self.target}"


@dataclass
class Continue(Stmt):
    def __str__(self) -> str:
        return "CONTINUE"


@dataclass
class Return(Stmt):
    def __str__(self) -> str:
        return "RETURN"


@dataclass
class Stop(Stmt):
    def __str__(self) -> str:
        return "STOP"


@dataclass
class IoStmt(Stmt):
    """WRITE/PRINT/READ — modeled as uses (writes for READ) of its items."""

    kind: str  # 'write' | 'print' | 'read'
    items: list[Expr]

    def __str__(self) -> str:
        return f"{self.kind.upper()} ..."


# ----- declarations (kept in the unit prologue) ------------------------------ #


@dataclass
class Declaration(Stmt):
    """Type declaration: ``INTEGER a, b(10)`` etc."""

    type_name: str  # 'integer' | 'real' | 'logical' | 'doubleprecision' | ...
    entities: list[tuple[str, list[Expr]]]  # (name, dim declarators; [] = scalar)

    def __str__(self) -> str:
        return f"{self.type_name.upper()} ..."


@dataclass
class DimensionStmt(Stmt):
    entities: list[tuple[str, list[Expr]]]

    def __str__(self) -> str:
        return "DIMENSION ..."


@dataclass
class ParameterStmt(Stmt):
    bindings: list[tuple[str, Expr]]

    def __str__(self) -> str:
        return "PARAMETER ..."


@dataclass
class CommonStmt(Stmt):
    block: str
    entities: list[tuple[str, list[Expr]]]

    def __str__(self) -> str:
        return f"COMMON /{self.block}/ ..."


@dataclass
class MiscDecl(Stmt):
    """IMPLICIT / EXTERNAL / INTRINSIC / DATA / SAVE — parsed, not analyzed."""

    kind: str
    text: str

    def __str__(self) -> str:
        return self.text


# --------------------------------------------------------------------------- #
# program units
# --------------------------------------------------------------------------- #


@dataclass
class ProgramUnit:
    """A PROGRAM / SUBROUTINE / FUNCTION unit."""

    kind: str  # 'program' | 'subroutine' | 'function'
    name: str
    params: list[str]
    decls: list[Stmt]
    body: list[Stmt]
    result_type: Optional[str] = None  # for functions
    lineno: int = 0

    def walk_statements(self) -> Iterator[Stmt]:
        """Depth-first iteration over all statements."""
        for stmt in self.body:
            yield from stmt.walk()

    def __str__(self) -> str:
        return f"{self.kind.upper()} {self.name}"


@dataclass
class Program:
    """A whole parsed source file: all program units."""

    units: list[ProgramUnit]

    def unit(self, name: str) -> ProgramUnit:
        """Look up a program unit by name."""
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(name)

    def main(self) -> ProgramUnit:
        """The main program (or the first unit)."""
        for u in self.units:
            if u.kind == "program":
                return u
        return self.units[0]

    def __str__(self) -> str:
        return f"Program({', '.join(u.name for u in self.units)})"
