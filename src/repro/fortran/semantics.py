"""Semantic analysis: symbol tables and reference resolution.

Fortran's grammar cannot distinguish ``A(I)`` the array element from
``A(I)`` the function call; this pass resolves every :class:`Apply` using
the unit's declarations, the program's unit names, and the intrinsic
table, and records per-unit symbol information used by the analyses:

* array declarations with per-dimension bounds,
* scalar types (declared or implicit ``i``–``n`` integer rule),
* ``PARAMETER`` constants,
* dummy parameters and ``COMMON`` membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SemanticError
from .ast_nodes import (
    Apply,
    Assign,
    CallStmt,
    CommonStmt,
    Declaration,
    DimensionStmt,
    DoLoop,
    Expr,
    IfBlock,
    IntLit,
    IoStmt,
    LogicalIf,
    NameRef,
    ParameterStmt,
    Program,
    ProgramUnit,
    RangeSub,
    Stmt,
)

#: Fortran intrinsics the subset recognizes (never treated as user arrays)
INTRINSICS = frozenset(
    {
        "abs", "iabs", "dabs", "min", "max", "min0", "max0", "amin1", "amax1",
        "dmin1", "dmax1", "mod", "amod", "dmod", "sqrt", "dsqrt", "exp",
        "dexp", "log", "alog", "dlog", "sin", "cos", "tan", "dsin", "dcos",
        "atan", "atan2", "datan", "int", "ifix", "idint", "float", "real",
        "dble", "sngl", "sign", "isign", "dsign", "nint", "idnint", "len",
        "char", "ichar", "cmplx", "aimag", "conjg",
    }
)


@dataclass
class ArrayInfo:
    """Declared shape of one array."""

    name: str
    #: per-dimension (lower, upper) bound expressions; lower defaults to 1,
    #: upper is None for assumed-size ``(*)`` declarations
    bounds: list[tuple[Expr, Optional[Expr]]]

    @property
    def rank(self) -> int:
        return len(self.bounds)


@dataclass
class SymbolTable:
    """Per-unit symbol information."""

    unit: ProgramUnit
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    scalar_types: dict[str, str] = field(default_factory=dict)
    parameters: dict[str, Expr] = field(default_factory=dict)
    commons: dict[str, list[str]] = field(default_factory=dict)
    externals: set[str] = field(default_factory=set)

    def is_array(self, name: str) -> bool:
        """Is *name* a declared (or inferred) array?"""
        return name in self.arrays

    def is_dummy(self, name: str) -> bool:
        """Is *name* a dummy argument of the unit?"""
        return name in self.unit.params

    def type_of(self, name: str) -> str:
        """Declared or implicit type of a scalar."""
        if name in self.scalar_types:
            return self.scalar_types[name]
        return "integer" if name[0] in "ijklmn" else "real"

    def is_logical(self, name: str) -> bool:
        """Is *name* LOGICAL-typed?"""
        return self.type_of(name) == "logical"

    def common_block_of(self, name: str) -> Optional[str]:
        """The COMMON block containing *name*, if any."""
        for block, names in self.commons.items():
            if name in names:
                return block
        return None


@dataclass
class AnalyzedProgram:
    """A parsed program plus its per-unit symbol tables."""

    program: Program
    tables: dict[str, SymbolTable]

    def table(self, unit_name: str) -> SymbolTable:
        """The symbol table of one unit."""
        return self.tables[unit_name]

    def unit(self, name: str) -> ProgramUnit:
        """Look up a program unit by name."""
        return self.program.unit(name)

    def unit_names(self) -> frozenset[str]:
        """Names of all program units."""
        return frozenset(self.tables)


def analyze(program: Program) -> AnalyzedProgram:
    """Build symbol tables and resolve array-vs-call for every unit."""
    unit_names = {u.name for u in program.units}
    function_names = {u.name for u in program.units if u.kind == "function"}
    tables: dict[str, SymbolTable] = {}
    for unit in program.units:
        table = _collect_declarations(unit)
        _resolve_applies(unit, table, unit_names, function_names)
        tables[unit.name] = table
    return AnalyzedProgram(program, tables)


def _collect_declarations(unit: ProgramUnit) -> SymbolTable:
    table = SymbolTable(unit)
    for decl in unit.decls:
        if isinstance(decl, Declaration):
            for name, dims in decl.entities:
                if dims:
                    _declare_array(table, name, dims)
                else:
                    table.scalar_types[name] = decl.type_name
        elif isinstance(decl, DimensionStmt):
            for name, dims in decl.entities:
                if not dims:
                    raise SemanticError(
                        f"DIMENSION entry without bounds: {name} in {unit.name}"
                    )
                _declare_array(table, name, dims)
        elif isinstance(decl, ParameterStmt):
            for name, value in decl.bindings:
                table.parameters[name] = value
        elif isinstance(decl, CommonStmt):
            names = []
            for name, dims in decl.entities:
                names.append(name)
                if dims:
                    _declare_array(table, name, dims)
            table.commons.setdefault(decl.block or "", []).extend(names)
    return table


def _declare_array(table: SymbolTable, name: str, dims: list[Expr]) -> None:
    bounds: list[tuple[Expr, Optional[Expr]]] = []
    for dim in dims:
        if isinstance(dim, RangeSub):
            lo = dim.lo if dim.lo is not None else IntLit(1)
            hi = dim.hi
            if isinstance(hi, NameRef) and hi.name == "*":
                hi = None
            bounds.append((lo, hi))
        elif isinstance(dim, NameRef) and dim.name == "*":
            bounds.append((IntLit(1), None))
        else:
            bounds.append((IntLit(1), dim))
    if name in table.arrays and table.arrays[name].rank != len(bounds):
        raise SemanticError(f"conflicting declarations for array {name}")
    table.arrays[name] = ArrayInfo(name, bounds)


def _resolve_applies(
    unit: ProgramUnit,
    table: SymbolTable,
    unit_names: set[str],
    function_names: set[str],
) -> None:
    def visit_expr(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, Apply):
                node.is_array = _classify(node.name, table, function_names)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.target)
            visit_expr(stmt.value)
            if isinstance(stmt.target, Apply) and not stmt.target.is_array:
                # assignment to name(...) forces it to be an array (or a
                # statement function, which the subset does not support)
                if stmt.target.name in function_names:
                    raise SemanticError(
                        f"assignment to function {stmt.target.name} in {unit.name}"
                    )
                _declare_array(
                    table,
                    stmt.target.name,
                    [NameRef("*") for _ in stmt.target.args],
                )
                stmt.target.is_array = True
        elif isinstance(stmt, CallStmt):
            for arg in stmt.args:
                visit_expr(arg)
        elif isinstance(stmt, (IfBlock,)):
            for cond, _ in stmt.arms:
                visit_expr(cond)
        elif isinstance(stmt, LogicalIf):
            visit_expr(stmt.cond)
        elif isinstance(stmt, DoLoop):
            visit_expr(stmt.start)
            visit_expr(stmt.stop)
            if stmt.step is not None:
                visit_expr(stmt.step)
        elif isinstance(stmt, IoStmt):
            for item in stmt.items:
                visit_expr(item)

    for stmt in unit.walk_statements():
        visit_stmt(stmt)
    # two passes: the first may have declared implicit arrays used before
    # their first assignment in statement order
    for stmt in unit.walk_statements():
        visit_stmt(stmt)


def _classify(name: str, table: SymbolTable, function_names: set[str]) -> bool:
    """True if *name* used with an argument list denotes an array."""
    if table.is_array(name):
        return True
    if name in INTRINSICS or name in function_names or name in table.externals:
        return False
    # undeclared, not a known function: Fortran would make this an external
    # function reference
    return False
