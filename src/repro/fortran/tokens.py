"""Token kinds and the token data type for the Fortran-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    """Token kinds produced by the lexer."""

    NAME = "name"
    INT = "int"
    REAL = "real"
    STRING = "string"
    # operators / punctuation
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    COLON = ":"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"
    CONCAT = "//"
    # relational
    EQ = ".eq."
    NE = ".ne."
    LT = ".lt."
    LE = ".le."
    GT = ".gt."
    GE = ".ge."
    # logical
    AND = ".and."
    OR = ".or."
    NOT = ".not."
    EQV = ".eqv."
    NEQV = ".neqv."
    TRUE = ".true."
    FALSE = ".false."
    EOF = "<eof>"


#: dotted keywords recognized by the lexer
DOT_OPERATORS = {
    ".eq.": TokKind.EQ,
    ".ne.": TokKind.NE,
    ".lt.": TokKind.LT,
    ".le.": TokKind.LE,
    ".gt.": TokKind.GT,
    ".ge.": TokKind.GE,
    ".and.": TokKind.AND,
    ".or.": TokKind.OR,
    ".not.": TokKind.NOT,
    ".eqv.": TokKind.EQV,
    ".neqv.": TokKind.NEQV,
    ".true.": TokKind.TRUE,
    ".false.": TokKind.FALSE,
}

#: free-form relational spellings mapped onto the canonical dotted kinds
FREEFORM_RELOPS = {
    "==": TokKind.EQ,
    "/=": TokKind.NE,
    "<": TokKind.LT,
    "<=": TokKind.LE,
    ">": TokKind.GT,
    ">=": TokKind.GE,
}


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    lineno: int
    col: int

    def is_name(self, *names: str) -> bool:
        """Is this a NAME token with one of the given spellings?"""
        return self.kind is TokKind.NAME and self.text in names

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
