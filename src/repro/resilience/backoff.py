"""Seeded exponential backoff, shared by every retry loop in the tree.

One formula, one place: the batch supervisor's item retries, the HTTP
client's 429/503 retries, and any future retry ladder all compute their
delay here, so "exponential backoff with seeded jitter" means the same
thing (and stays bit-reproducible under a fixed seed) everywhere.
"""

from __future__ import annotations

import random


def backoff_delay(
    attempt: int,
    base: float,
    rng: random.Random,
    floor: float = 0.0,
) -> float:
    """Delay in seconds before retrying *attempt* (1-based).

    Exponential in the attempt number with uniform seeded jitter of up
    to one *base* on top; *floor* lifts the result to at least that many
    seconds (used to honor a server-advertised ``Retry-After``).
    """
    delay = base * (2 ** (max(1, attempt) - 1))
    delay += rng.uniform(0.0, base)
    return max(floor, delay)
