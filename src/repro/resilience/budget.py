"""Analysis budgets: deadline / step limits for the symbolic hot paths.

The paper's contract is *conservative correctness*: when the analysis
cannot afford to prove a region relation it must fall back to a safe
summary, never hang.  An :class:`AnalysisBudget` makes "cannot afford"
explicit — a wall-clock deadline and/or an abstract step count charged by
the expensive kernels (``Comparer.prove``, Fourier–Motzkin elimination,
the GAR simplifier).  On exhaustion :class:`~repro.errors.BudgetExceeded`
is raised; ``SUM_loop``/``SUM_call`` catch it and degrade to the
conservative whole-array summary (see :mod:`repro.dataflow.sum_loop`).

One budget is active per process at a time (analysis is single-threaded
within a process; the batch engine's workers each own their own).  The
hot-path cost with no budget active is a single module-global ``None``
test; deadline checks amortize the clock syscall over
:data:`DEADLINE_CHECK_INTERVAL` steps.

Once a budget is exhausted it *stays* exhausted: every further charge
re-raises, so partially computed work unwinds to the nearest conservative
catch point and everything after it degrades too — deadline semantics,
deterministic for step budgets.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import BudgetExceeded

#: steps between wall-clock reads when a deadline is set
DEADLINE_CHECK_INTERVAL = 256


class AnalysisBudget:
    """A deadline and/or step budget for one analysis run."""

    __slots__ = ("max_steps", "deadline", "budget_ms", "steps",
                 "exhausted_reason", "_countdown")

    def __init__(
        self,
        budget_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        self.budget_ms = budget_ms
        self.max_steps = max_steps
        self.deadline = (
            time.monotonic() + budget_ms / 1000.0
            if budget_ms is not None
            else None
        )
        self.steps = 0
        #: None while within budget; "steps" or "deadline" after
        self.exhausted_reason: Optional[str] = None
        self._countdown = DEADLINE_CHECK_INTERVAL

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def _raise(self) -> None:
        reason = self.exhausted_reason or "budget"
        if reason == "steps":
            detail = f"step budget exhausted ({self.max_steps} steps)"
        else:
            detail = f"deadline exceeded ({self.budget_ms} ms)"
        raise BudgetExceeded(f"analysis budget exceeded: {detail}",
                             reason=reason)

    def charge(self, n: int = 1) -> None:
        """Consume *n* abstract steps; raise once the budget is gone."""
        if self.exhausted_reason is not None:
            self._raise()
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            self.exhausted_reason = "steps"
            self._raise()
        if self.deadline is not None:
            self._countdown -= n
            if self._countdown <= 0:
                self._countdown = DEADLINE_CHECK_INTERVAL
                if time.monotonic() > self.deadline:
                    self.exhausted_reason = "deadline"
                    self._raise()

    def check(self) -> None:
        """Raise if already exhausted, without consuming a step."""
        if self.exhausted_reason is not None:
            self._raise()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnalysisBudget(ms={self.budget_ms}, max_steps={self.max_steps},"
            f" steps={self.steps}, exhausted={self.exhausted_reason!r})"
        )


#: the per-process active budget (None → charges are free no-ops)
_ACTIVE: Optional[AnalysisBudget] = None


def active_budget() -> Optional[AnalysisBudget]:
    """The budget currently in scope, if any."""
    return _ACTIVE


def charge(n: int = 1) -> None:
    """Charge the active budget; no-op (one global read) without one."""
    budget = _ACTIVE
    if budget is not None:
        budget.charge(n)


@contextmanager
def budget_scope(budget: Optional[AnalysisBudget]) -> Iterator[
        Optional[AnalysisBudget]]:
    """Install *budget* as the process's active budget for the block.

    Nests: the previous budget (usually ``None``) is restored on exit.
    Passing ``None`` explicitly de-activates budgeting inside the block.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = budget
    try:
        yield budget
    finally:
        _ACTIVE = previous
