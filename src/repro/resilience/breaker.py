"""Circuit breaker: fail fast on a sick dependency, probe for recovery.

The batch engine's durable cache tiers (:mod:`repro.engine.backends`)
already degrade *per operation* — a busy or corrupt SQLite row costs one
retry ladder and one miss.  What they cannot do alone is notice that the
shared tier is *persistently* sick: every miss then still pays the full
busy-retry ladder, and a fleet of workers hammering a wedged database
turns one slow dependency into a slow fleet.

:class:`CircuitBreaker` adds that memory.  It watches consecutive
failures; at :attr:`failure_threshold` it *trips* into the ``open``
state, where the guarded operation is skipped outright (the cache
backend answers "miss"/"dropped" locally — degraded local-only mode).
After a seeded number of short-circuited operations one call is allowed
through as a ``half-open`` probe: success closes the breaker
(recovery), failure re-opens it for another probe window.

Determinism: the probe schedule counts *operations*, not wall-clock, and
its jitter comes from a seeded :class:`random.Random` — a chaos run with
a fixed fault plan trips and recovers at reproducible points.  All
transitions are surfaced as counters (``trips`` / ``recoveries`` /
``short_circuits``) that the backends mirror into
:class:`~repro.engine.cache.CacheStats`.
"""

from __future__ import annotations

import random

#: state names, in escalation order
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Deterministic, operation-counted circuit breaker.

    Usage pattern (see :class:`~repro.engine.backends.SharedSQLiteBackend`)::

        if not breaker.allow():
            return None                # degraded local-only answer
        try:
            result = op()
            breaker.record_success()
        except ...:
            breaker.record_failure()
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        probe_after: int = 16,
        seed: int = 0,
    ) -> None:
        #: consecutive failures (while closed) that trip the breaker
        self.failure_threshold = max(1, failure_threshold)
        #: short-circuited operations before a half-open probe; each
        #: trip adds seeded jitter so fleets don't probe in lockstep
        self.probe_after = max(1, probe_after)
        self.state = CLOSED
        self.trips = 0
        self.recoveries = 0
        self.short_circuits = 0
        self._consecutive_failures = 0
        self._skip_remaining = 0
        self._rng = random.Random(seed)

    # -- the guard ----------------------------------------------------------------

    def allow(self) -> bool:
        """May the guarded operation run?  False = short-circuit it.

        In the ``open`` state this counts down the probe window; the
        call that exhausts it transitions to ``half-open`` and is let
        through as the probe.  While a probe's outcome is pending any
        further operations stay short-circuited (one probe at a time).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self._skip_remaining <= 0:
            self.state = HALF_OPEN
            return True
        if self.state == OPEN:
            self._skip_remaining -= 1
        self.short_circuits += 1
        return False

    # -- outcome reporting --------------------------------------------------------

    def record_success(self) -> bool:
        """An allowed operation succeeded; True when this *recovered*
        (closed a half-open breaker)."""
        recovered = self.state == HALF_OPEN
        if recovered:
            self.recoveries += 1
        self.state = CLOSED
        self._consecutive_failures = 0
        return recovered

    def record_failure(self) -> bool:
        """An allowed operation failed; True when this *tripped* the
        breaker (closed/half-open → open)."""
        if self.state == HALF_OPEN:
            self._open()
            return True
        self._consecutive_failures += 1
        if self.state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._open()
            return True
        return False

    def _open(self) -> None:
        self.state = OPEN
        self.trips += 1
        self._consecutive_failures = 0
        self._skip_remaining = self.probe_after + self._rng.randrange(
            self.probe_after // 4 + 1
        )

    # -- introspection ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "short_circuits": self.short_circuits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"recoveries={self.recoveries})"
        )
