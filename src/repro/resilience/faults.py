"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` is a set of seeded, deterministic fault specs parsed
from the ``PANORAMA_FAULTS`` environment variable (the env var — not a
Python object — is the transport, so batch pool workers inherit the plan
for free).  Production code calls :func:`should_fire` at a handful of
injection sites; with no plan configured the call is a cached ``None``
test and nothing ever fires.

Spec syntax (``;``-separated)::

    site[:key][@n]

* ``site`` — the injection point, e.g. ``worker.crash``, ``item.hang``,
  ``item.error``, ``cache.read``, ``cache.corrupt``, ``budget.exhaust``,
  ``backend.read``/``backend.write``/``backend.busy`` (shared SQLite
  tier I/O and lock-exhaustion), ``ledger.write`` (torn journal line),
  ``engine.crash`` (hard process kill between items), ``server.conn``
  (dropped daemon connection);
* ``key`` — optional filter (item name, cache fingerprint prefix);
  ``*`` or absent matches any key;
* ``@n`` — fire only on the *n*-th occurrence (for worker faults the
  occurrence is the item's attempt number, so a respawned worker does not
  re-fire a fault already consumed by attempt 1); without ``@n`` the
  fault fires on **every** occurrence.

Example: ``PANORAMA_FAULTS="worker.crash:MDG@1;cache.read@2"`` crashes
the worker analyzing MDG on its first attempt and fails the second disk
cache read in every process.

Determinism: specs address occurrences by index, never by chance, and the
batch engine's backoff jitter is seeded — a chaos run with a fixed plan
and seed is reproducible bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: environment variable carrying the plan across process boundaries
ENV_VAR = "PANORAMA_FAULTS"

#: how long an injected hang sleeps (far beyond any sane item timeout)
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: fire at *site* (for *key*) on occurrence *nth*."""

    site: str
    key: Optional[str] = None  # None/'*' = any key
    nth: Optional[int] = None  # None = every occurrence

    def matches(self, site: str, key: Optional[str], occurrence: int) -> bool:
        if site != self.site:
            return False
        if self.key is not None and self.key != "*" and key != self.key:
            return False
        return self.nth is None or occurrence == self.nth


def parse_plan(text: str) -> "FaultPlan":
    """Parse the ``PANORAMA_FAULTS`` syntax into a :class:`FaultPlan`."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        nth: Optional[int] = None
        if "@" in chunk:
            chunk, _, nth_text = chunk.rpartition("@")
            nth = int(nth_text)
        site, _, key = chunk.partition(":")
        specs.append(FaultSpec(site=site, key=key or None, nth=nth))
    return FaultPlan(specs=tuple(specs))


@dataclass
class FaultPlan:
    """The active fault specs plus per-(site, key) occurrence counters."""

    specs: Tuple[FaultSpec, ...] = ()
    _counters: Dict[Tuple[str, Optional[str]], int] = field(
        default_factory=dict
    )

    def should_fire(
        self,
        site: str,
        key: Optional[str] = None,
        occurrence: Optional[int] = None,
    ) -> bool:
        """Does a spec fire at this site/key, on this occurrence?

        With *occurrence* omitted, the plan counts occurrences itself,
        per ``(site, key)``, within the current process.
        """
        if not self.specs:
            return False
        if occurrence is None:
            counter_key = (site, key)
            occurrence = self._counters.get(counter_key, 0) + 1
            self._counters[counter_key] = occurrence
        return any(s.matches(site, key, occurrence) for s in self.specs)


#: lazily parsed process-wide plan; None = env not yet consulted
_PLAN: Optional[FaultPlan] = None
_EMPTY = FaultPlan()


def plan() -> FaultPlan:
    """The process's fault plan (parsed from the env var once)."""
    global _PLAN
    if _PLAN is None:
        text = os.environ.get(ENV_VAR, "")
        _PLAN = parse_plan(text) if text else _EMPTY
    return _PLAN


def should_fire(
    site: str, key: Optional[str] = None, occurrence: Optional[int] = None
) -> bool:
    """Convenience wrapper over :meth:`FaultPlan.should_fire`."""
    return plan().should_fire(site, key, occurrence)


def install(new_plan: Optional[FaultPlan]) -> None:
    """Force a plan (tests); ``None`` reverts to lazy env parsing."""
    global _PLAN
    _PLAN = new_plan


def reset() -> None:
    """Drop the cached plan so the env var is re-read (tests)."""
    install(None)
