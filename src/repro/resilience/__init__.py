"""The resilience layer: budgets, graceful degradation, fault injection.

Every failure mode of the analysis runtime must either *degrade
conservatively* (the paper's whole-array fallback) or *retry under
supervision* (the batch engine), and both must be observable:

* :mod:`repro.resilience.budget` — deadline / step budgets charged by
  the symbolic hot paths; exhaustion raises
  :class:`~repro.errors.BudgetExceeded`, which ``SUM_loop``/``SUM_call``
  convert into the conservative whole-array summary;
* :mod:`repro.resilience.faults` — seeded, deterministic fault plans
  (env-var gated) driving the ``tests/chaos`` suite;
* :mod:`repro.resilience.breaker` — the circuit breaker that trips a
  persistently sick durable cache tier into local-only degraded mode
  (seeded half-open probes, counted trips/recoveries);
* :mod:`repro.resilience.backoff` — the one seeded exponential-backoff
  formula every retry loop (batch supervisor, HTTP client) shares;
* the typed error taxonomy lives in :mod:`repro.errors`
  (``BudgetExceeded``, ``WorkerCrash``, ``ItemTimeout``,
  ``classify_exception``).

The degradation ladder, top to bottom (see ``docs/robustness.md``):
prove fails → FM bails (counted) → budget fallback (conservative
summary) → item retry with backoff → quarantine.
"""

from ..errors import (
    BudgetExceeded,
    ItemTimeout,
    ResilienceError,
    WorkerCrash,
    classify_exception,
)
from .backoff import backoff_delay
from .breaker import CircuitBreaker
from .budget import (
    AnalysisBudget,
    active_budget,
    budget_scope,
    charge,
)
from .faults import FaultPlan, FaultSpec, parse_plan, should_fire

__all__ = [
    "AnalysisBudget",
    "BudgetExceeded",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "ItemTimeout",
    "ResilienceError",
    "WorkerCrash",
    "active_budget",
    "backoff_delay",
    "budget_scope",
    "charge",
    "classify_exception",
    "parse_plan",
    "should_fire",
]
