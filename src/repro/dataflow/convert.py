"""Conversion from Fortran expressions to symbolic expressions/predicates.

This is where the paper's "symbolic analysis" (technique T1 of Table 1)
and "IF condition analysis" (T2) enter:

* :func:`to_symexpr` maps an integer-valued Fortran expression to a
  :class:`~repro.symbolic.expr.SymExpr`; anything outside the symbolic
  subset (array references, function calls, truncating division,
  real arithmetic) yields ``None`` — the caller then substitutes a fresh
  *opaque symbol*, which keeps identical unknown values consistent but
  assumes nothing else about them.
* :func:`to_predicate` maps an IF condition to a guard
  :class:`~repro.symbolic.predicate.Predicate`; conditions containing
  array references yield Δ (the paper's implementation restriction,
  section 5.2 — this is exactly why MDG's ``RL`` is not privatized).

With symbolic analysis disabled (the T1 ablation) every non-literal
expression is opaque, reproducing the behaviour of a non-symbolic
analyzer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..fortran.ast_nodes import (
    Apply,
    BinOp,
    Expr,
    IntLit,
    LogicalLit,
    NameRef,
    RealLit,
    StringLit,
    UnOp,
)
from ..fortran.semantics import SymbolTable
from ..symbolic import BoolAtom, Predicate, Relation, SymExpr

_REL_OPS = {".eq.", ".ne.", ".lt.", ".le.", ".gt.", ".ge."}
_opaque_counter = itertools.count(1)


def subscript_placeholder(position: int) -> SymExpr:
    """Placeholder for the *position*-th subscript of an index-array form.

    The paper (section 6) replaces subscript arrays like ARC2D's
    ``JPLUS``/``JMINUS`` with their closed-form expressions ("forward
    substitution by hand"); an :data:`index_array_forms` entry such as
    ``{"jplus": subscript_placeholder(1) + 1}`` performs the same
    substitution mechanically: ``A(JPLUS(J))`` converts as ``A(J+1)``.
    """
    return SymExpr.var(f"arg%{position}")


@dataclass
class ConversionContext:
    """Everything expression conversion needs to know."""

    table: SymbolTable
    #: T1: symbolic analysis of non-index variables enabled
    symbolic: bool = True
    #: T2: IF conditions turned into guards (otherwise Δ)
    if_conditions: bool = True
    #: loop index variables currently in scope (always symbolic, even
    #: with T1 off — conventional analyses handle induction variables)
    active_indices: frozenset[str] = frozenset()
    #: extra scalar value bindings applied on conversion (forward
    #: substitution of PARAMETER constants)
    bindings: dict[str, SymExpr] = field(default_factory=dict)
    #: closed forms for subscript arrays (paper section 6), keyed by
    #: array name; expressions over :func:`subscript_placeholder`
    index_array_forms: dict[str, SymExpr] = field(default_factory=dict)
    #: element-value bounds for arrays proven by the content domain
    #: (docs/frontier.md): array name → inclusive (lo, hi) over every
    #: read the routine performs — lets :func:`to_predicate` discharge
    #: guards like ``F(J) .GE. 1`` without a closed form
    content_bounds: dict[str, tuple[Fraction, Fraction]] = field(
        default_factory=dict
    )

    def with_index(self, name: str) -> "ConversionContext":
        """The context with one more active loop index."""
        bindings = self.bindings
        if name in bindings:
            # the loop index shadows any forward value binding
            bindings = {k: v for k, v in bindings.items() if k != name}
        return ConversionContext(
            self.table,
            self.symbolic,
            self.if_conditions,
            self.active_indices | {name},
            bindings,
            self.index_array_forms,
            self.content_bounds,
        )

    def fresh_opaque(self, hint: str = "v") -> SymExpr:
        """A fresh symbol standing for an unknown (but fixed) value."""
        return SymExpr.var(f"{hint}@{next(_opaque_counter)}")


def reset_opaque_counter() -> None:
    """Restart opaque-symbol numbering (deterministic test output)."""
    global _opaque_counter
    _opaque_counter = itertools.count(1)


def _real_literal(text: str) -> Optional[Fraction]:
    t = text.replace("d", "e")
    try:
        if "e" in t:
            mant, _, exp = t.partition("e")
            return Fraction(mant or "0") * Fraction(10) ** int(exp)
        return Fraction(t)
    except (ValueError, ZeroDivisionError):
        return None


def to_symexpr(expr: Expr, ctx: ConversionContext) -> Optional[SymExpr]:
    """Symbolic form of an integer-valued expression, or ``None``."""
    if isinstance(expr, IntLit):
        return SymExpr.const(expr.value)
    if isinstance(expr, NameRef):
        name = expr.name
        if name in ctx.bindings:
            return ctx.bindings[name]
        if name in ctx.table.parameters:
            return to_symexpr(ctx.table.parameters[name], ctx)
        if ctx.table.is_array(name):
            return None
        if name in ctx.active_indices:
            return SymExpr.var(name)
        if not ctx.symbolic:
            return None  # T1 off: only constants and loop indices
        return SymExpr.var(name)
    if isinstance(expr, UnOp):
        if expr.op == "-":
            inner = to_symexpr(expr.operand, ctx)
            return None if inner is None else -inner
        if expr.op == "+":
            return to_symexpr(expr.operand, ctx)
        return None
    if isinstance(expr, Apply) and expr.is_array:
        form = ctx.index_array_forms.get(expr.name)
        if form is not None:
            subs = [to_symexpr(a, ctx) for a in expr.args]
            if all(s is not None for s in subs):
                return form.substitute(
                    {f"arg%{k}": s for k, s in enumerate(subs, start=1)}
                )
        return None
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-", "*", "/", "**"):
            left = to_symexpr(expr.left, ctx)
            right = to_symexpr(expr.right, ctx)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                # Fortran integer division truncates; only exact constant
                # divisions are representable
                divisor = right.constant_value()
                if divisor is None or divisor == 0:
                    return None
                quotient = left.div_const(divisor)
                if all(c.denominator == 1 for _, c in quotient.terms):
                    return quotient
                return None
            # '**' with small constant exponent
            power = right.constant_value()
            if power is None or power.denominator != 1:
                return None
            p = power.numerator
            if 0 <= p <= 4:
                out = SymExpr.const(1)
                for _ in range(p):
                    out = out * left
                return out
            return None
        return None
    return None  # Apply / RealLit / StringLit / LogicalLit


def is_integer_expr(expr: Expr, ctx: ConversionContext) -> bool:
    """Conservatively: every leaf is integer-typed."""
    if isinstance(expr, IntLit):
        return True
    if isinstance(expr, (RealLit, StringLit, LogicalLit)):
        return False
    if isinstance(expr, NameRef):
        if ctx.table.is_array(expr.name):
            return False
        return ctx.table.type_of(expr.name) == "integer"
    if isinstance(expr, UnOp):
        return expr.op in ("-", "+") and is_integer_expr(expr.operand, ctx)
    if isinstance(expr, BinOp):
        return (
            expr.op in ("+", "-", "*", "/", "**")
            and is_integer_expr(expr.left, ctx)
            and is_integer_expr(expr.right, ctx)
        )
    if isinstance(expr, Apply):
        return False
    return False


def _numeric_side(expr: Expr, ctx: ConversionContext) -> Optional[SymExpr]:
    """Symbolic form of one side of a comparison (integer or real).

    Real scalars become symbolic variables; simple real literals become
    exact rationals.  Returns ``None`` for unsupported forms.
    """
    sym = to_symexpr(expr, ctx)
    if sym is not None:
        return sym
    if isinstance(expr, RealLit):
        value = _real_literal(expr.text)
        return None if value is None else SymExpr.const(value)
    if isinstance(expr, NameRef):
        if ctx.table.is_array(expr.name):
            return None
        if not ctx.symbolic and expr.name not in ctx.active_indices:
            return None
        if ctx.table.type_of(expr.name) in ("real", "doubleprecision"):
            return SymExpr.var(expr.name)
        return None
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _numeric_side(expr.operand, ctx)
        return None if inner is None else -inner
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = _numeric_side(expr.left, ctx)
        right = _numeric_side(expr.right, ctx)
        if left is None or right is None:
            return None
        return left + right if expr.op == "+" else left - right
    if isinstance(expr, BinOp) and expr.op == "*":
        left = _numeric_side(expr.left, ctx)
        right = _numeric_side(expr.right, ctx)
        if left is None or right is None:
            return None
        if left.is_constant() or right.is_constant():
            return left * right
        return None
    return None


def _bounds_discharge(expr: BinOp, ctx: ConversionContext) -> Optional[bool]:
    """Decide ``A(e) REL c`` from a content-domain element-bound fact.

    The content domain (docs/frontier.md) only installs ``(lo, hi)``
    bounds for arrays whose every read in the routine is proven to hit
    the segment the fact covers, so the relation can be decided whenever
    the bound interval lies entirely on one side of the constant.
    Returns ``None`` when the guard is not of this shape or the bounds
    are inconclusive.
    """

    def array_bounds(e: Expr) -> Optional[tuple[Fraction, Fraction]]:
        if isinstance(e, Apply) and e.is_array:
            return ctx.content_bounds.get(e.name)
        return None

    def const_of(e: Expr) -> Optional[Fraction]:
        sym = _numeric_side(e, ctx)
        return None if sym is None else sym.constant_value()

    bounds, const, op = array_bounds(expr.left), const_of(expr.right), expr.op
    if bounds is None:
        bounds, const = array_bounds(expr.right), const_of(expr.left)
        # mirror the relation so the array is always on the left
        op = {".lt.": ".gt.", ".gt.": ".lt.", ".le.": ".ge.",
              ".ge.": ".le.", ".eq.": ".eq.", ".ne.": ".ne."}[op]
    if bounds is None or const is None:
        return None
    lo, hi = bounds
    if op == ".lt.":
        return True if hi < const else (False if lo >= const else None)
    if op == ".le.":
        return True if hi <= const else (False if lo > const else None)
    if op == ".gt.":
        return True if lo > const else (False if hi <= const else None)
    if op == ".ge.":
        return True if lo >= const else (False if hi < const else None)
    if op == ".eq.":
        return True if lo == hi == const else (
            False if const < lo or const > hi else None
        )
    if op == ".ne.":
        return False if lo == hi == const else (
            True if const < lo or const > hi else None
        )
    return None


def to_predicate(expr: Expr, ctx: ConversionContext) -> Predicate:
    """Guard predicate of an IF condition; Δ when unsupported (or T2 off)."""
    if not ctx.if_conditions:
        return Predicate.unknown()
    if isinstance(expr, LogicalLit):
        return Predicate.true() if expr.value else Predicate.false()
    if isinstance(expr, NameRef):
        if ctx.table.is_logical(expr.name):
            return Predicate.boolvar(expr.name)
        return Predicate.unknown()
    if isinstance(expr, UnOp) and expr.op == ".not.":
        return to_predicate(expr.operand, ctx).negate()
    if isinstance(expr, BinOp):
        if expr.op == ".and.":
            return to_predicate(expr.left, ctx) & to_predicate(expr.right, ctx)
        if expr.op == ".or.":
            return to_predicate(expr.left, ctx) | to_predicate(expr.right, ctx)
        if expr.op == ".eqv.":
            p, q = to_predicate(expr.left, ctx), to_predicate(expr.right, ctx)
            return (p & q) | (p.negate() & q.negate())
        if expr.op == ".neqv.":
            p, q = to_predicate(expr.left, ctx), to_predicate(expr.right, ctx)
            return (p & q.negate()) | (p.negate() & q)
        if expr.op in _REL_OPS:
            integer = is_integer_expr(expr.left, ctx) and is_integer_expr(
                expr.right, ctx
            )
            left = _numeric_side(expr.left, ctx)
            right = _numeric_side(expr.right, ctx)
            if left is None or right is None:
                bounded = _bounds_discharge(expr, ctx)
                if bounded is not None:
                    return Predicate.true() if bounded else Predicate.false()
                return Predicate.unknown()
            rel = {
                ".eq.": Relation.eq,
                ".ne.": Relation.ne,
                ".lt.": Relation.lt,
                ".le.": Relation.le,
                ".gt.": Relation.gt,
                ".ge.": Relation.ge,
            }[expr.op](left, right, integer)
            return Predicate.of_atom(rel)
    return Predicate.unknown()
