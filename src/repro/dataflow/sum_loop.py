"""``SUM_loop``: loop-node summaries via expansion (paper section 4.1).

Iteration-varying scalars.  A scalar assigned inside the body whose
symbol leaks into the body summary denotes its *iteration-start* value,
which differs from iteration to iteration — treating it as a single
symbol across the expansion would be unsound.  Following the paper's
section 5.2 ("for induction variables, we first convert them to
expressions of index variables"):

* a recognized basic induction variable (single unconditional
  ``v = v ± c`` with loop-invariant ``c``) is replaced by its closed form
  ``v + c * (i - lo) / step`` before expansion — exact;
* any other leaked iteration-varying scalar makes the affected dimensions
  Ω and drops the affected guard clauses (a sound over-approximation,
  marked inexact).


Computes, for a DO node, the per-iteration sets ``MOD_i``/``UE_i`` (by
summarizing the body subgraph), the prior/later iteration sets
``MOD_{<i}``/``MOD_{>i}`` (by renaming the index and expanding over the
prior/later iteration subranges), and the whole-loop ``MOD``/``UE``::

    ue_i_out = UE_i - MOD_{<i}          # uses fed by earlier iterations
    UE       = expand(ue_i_out, i)      # are not exposed outside the loop
    MOD      = expand(MOD_i, i)

Conservative cases (paper section 5.4): premature exits mark the loop's
MOD inexact (it may not run to completion, so it must not kill); negative
or unknown steps expand with opaque bounds and inexact ordering sets.
"""

from __future__ import annotations

import itertools

from ..errors import BudgetExceeded
from ..hsg.nodes import LoopNode
from ..perf.profiler import COUNTERS, timed
from ..resilience.budget import charge as _budget_charge
from ..regions import GARList
from ..regions.gar_ops import subtract_lists, union_lists
from ..symbolic import SymExpr
from .context import LoopSummaryRecord
from .convert import ConversionContext, to_symexpr
from .expansion import expand_gar_list
from .summary import Summary, collect_uses, scalar_gar

_index_renames = itertools.count(1)


# --------------------------------------------------------------------------- #
# budget-exhaustion fallback (the paper's conservative whole-array summary)
# --------------------------------------------------------------------------- #


def _referenced_names(loop: LoopNode) -> set[str]:
    """Every name referenced anywhere in the loop (structural walk).

    Used only by the conservative fallback, which may not run symbolic
    machinery: a plain recursive walk over the body's HSG nodes and their
    AST statements, collecting ``NameRef``/``Apply`` names, call
    arguments, and nested loop indices/bounds.  Over-collection is fine
    (the fallback over-approximates anyway); under-collection is not.
    """
    import dataclasses

    from ..fortran.ast_nodes import Apply, Expr, NameRef, Stmt
    from ..hsg.nodes import (
        BasicBlockNode,
        CallNode,
        IfConditionNode,
        LoopNode as _Loop,
    )

    names: set[str] = set()

    def walk(obj) -> None:
        if isinstance(obj, (NameRef, Apply)):
            names.add(obj.name)
        if isinstance(obj, (Expr, Stmt)):
            for f in dataclasses.fields(obj):
                walk(getattr(obj, f.name))
        elif isinstance(obj, (list, tuple)):
            for child in obj:
                walk(child)

    def walk_graph(graph) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    walk(stmt)
            elif isinstance(node, IfConditionNode):
                walk(node.cond)
            elif isinstance(node, CallNode):
                walk(node.call.args)
            elif isinstance(node, _Loop):
                names.add(node.var)
                for expr in (node.start, node.stop, node.step):
                    if expr is not None:
                        walk(expr)
                walk_graph(node.body)

    walk_graph(loop.body)
    return names


def declared_bounds_gar(table, name: str, ctx: ConversionContext):
    """The whole-array GAR of *name* over its declared bounds.

    Guard ``true``, region spanning each declared dimension; dimensions
    whose bounds do not convert (assumed-size ``(*)``, nonlinear bounds)
    become Ω.  Always marked inexact: it is an over-approximation and
    must never kill.
    """
    from ..regions import GAR
    from ..regions.ranges import Range
    from ..regions.region import OMEGA_DIM, RegularRegion
    from ..symbolic import Predicate

    info = table.arrays[name]
    dims = []
    for lo_expr, hi_expr in info.bounds:
        lo = (
            to_symexpr(lo_expr, ctx)
            if lo_expr is not None
            else SymExpr.const(1)
        )
        hi = to_symexpr(hi_expr, ctx) if hi_expr is not None else None
        if lo is None or hi is None:
            dims.append(OMEGA_DIM)
        else:
            dims.append(Range(lo, hi, 1))
    return GAR(Predicate.true(), RegularRegion(name, dims), exact=False)


def conservative_loop_record(
    analyzer, loop: LoopNode, ctx: ConversionContext, reason: str = "budget"
) -> LoopSummaryRecord:
    """The budget-exhaustion fallback record for *loop*.

    Every array referenced in (or below) the loop contributes its whole
    declared-bounds region to MOD and UE; every scalar contributes its
    cell.  All sets are inexact over-approximations (they never kill), so
    downstream clients stay sound: the privatizer finds nothing
    privatizable, the dependence tests find everything conflicting, and
    the classifier reports the loop ``unknown (budget)``.
    """
    table = ctx.table
    known_units = set(analyzer.hsg.analyzed.unit_names())
    from ..fortran.semantics import INTRINSICS

    gars = []
    referenced = _referenced_names(loop) | {loop.var}
    for names in table.commons.values():
        referenced.update(names)  # callees may touch any COMMON storage
    for name in sorted(referenced):
        if table.is_array(name):
            gars.append(declared_bounds_gar(table, name, ctx))
        elif (
            name in INTRINSICS
            or name in table.externals
            or name in table.parameters
            or name in known_units
        ):
            continue  # functions and compile-time constants: no storage
        else:
            gars.append(scalar_gar(name).inexact())
    everything = GARList(gars)
    lo = to_symexpr(loop.start, ctx)
    hi = to_symexpr(loop.stop, ctx)
    step = (
        to_symexpr(loop.step, ctx)
        if loop.step is not None
        else SymExpr.const(1)
    )
    analyzer.stats.budget_degradations += 1
    COUNTERS.budget_fallbacks += 1
    return LoopSummaryRecord(
        routine=table.unit.name,
        var=loop.var,
        lo=lo if lo is not None else ctx.fresh_opaque("lo"),
        hi=hi if hi is not None else ctx.fresh_opaque("hi"),
        step=step if step is not None else ctx.fresh_opaque("step"),
        mod_i=everything,
        ue_i=everything,
        mod_lt=everything,
        mod_gt=everything,
        mod=everything,
        ue=everything,
        has_premature_exit=loop.has_premature_exit,
        negative_step=False,
        degraded=reason,
    )


def fix_iteration_varying(
    analyzer, loop, mod_i, ue_i, ctx: ConversionContext, lo, step,
    allow_induction: bool = True,
):
    """Resolve scalars whose iteration-start value leaks into summaries.

    Returns the corrected ``(mod_i, ue_i)``; see the module docstring.
    """
    fixed = fix_varying_lists(
        analyzer, loop, mod_i, [mod_i, ue_i], ctx, lo, step, allow_induction
    )
    return fixed[0], fixed[1]


def fix_varying_lists(
    analyzer, loop, assigned_source, targets, ctx: ConversionContext,
    lo, step, allow_induction: bool = True,
):
    """Apply the iteration-varying treatment to several GAR lists at once
    (the set of assigned scalars comes from *assigned_source*'s regions)."""
    table = ctx.table
    assigned = {
        g.array for g in assigned_source if not table.is_array(g.array)
    } - {loop.var}
    leaked_all = set()
    for target in targets:
        leaked_all |= target.free_vars() & assigned
    if not leaked_all:
        return list(targets)
    substitutions: dict[str, SymExpr] = {}
    unresolved: list[str] = []
    for name in sorted(leaked_all):
        closed = (
            _induction_closed_form(loop, name, ctx, lo, step)
            if allow_induction
            else None
        )
        if closed is not None:
            substitutions[name] = closed
        else:
            unresolved.append(name)
    out = []
    for target in targets:
        if substitutions:
            target = target.substitute(substitutions)
        for name in unresolved:
            target = _omega_out_symbol(target, name)
        out.append(target)
    return out


def recognized_inductions(
    analyzer, loop, ctx: ConversionContext
) -> dict[str, SymExpr]:
    """All basic induction variables of *loop* with their closed forms
    (iteration-start values), for the classifier and code generator."""
    record = analyzer.loop_summary(loop, ctx)
    table = ctx.table
    assigned = {
        g.array for g in record.mod_i if not table.is_array(g.array)
    } - {loop.var}
    out: dict[str, SymExpr] = {}
    for name in sorted(assigned):
        closed = _induction_closed_form(
            loop, name, ctx.with_index(loop.var), record.lo, record.step
        )
        if closed is not None and not record.negative_step:
            out[name] = closed
    return out


def _induction_closed_form(
    loop, name: str, ctx: ConversionContext, lo, step
):
    """Closed form of *name*'s iteration-start value, or ``None``.

    Requires a single ``name = name ± c`` assignment, on every path of the
    body, with ``c`` convertible and loop-invariant (no loop index, no
    scalar assigned in the body).
    """
    from ..fortran.ast_nodes import Apply, Assign, BinOp, NameRef
    from ..hsg.nodes import BasicBlockNode, LoopNode as _Loop

    updates: list[tuple] = []  # (top_level_node_or_None, stmt)
    assigned_names: set[str] = set()

    def scan(graph, top_level: bool):
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    if isinstance(stmt, Assign) and isinstance(
                        stmt.target, NameRef
                    ):
                        assigned_names.add(stmt.target.name)
                        if stmt.target.name == name:
                            updates.append((node if top_level else None, stmt))
                    elif isinstance(stmt, Assign) and isinstance(
                        stmt.target, Apply
                    ):
                        pass
            elif isinstance(node, _Loop):
                assigned_names.add(node.var)
                scan(node.body, False)

    scan(loop.body, True)
    if len(updates) != 1:
        return None
    node, stmt = updates[0]
    if node is None or not _on_all_paths(loop.body, node):
        return None
    value = stmt.value
    if not (
        isinstance(value, BinOp)
        and value.op in ("+", "-")
        and isinstance(value.left, NameRef)
        and value.left.name == name
    ):
        return None
    delta = to_symexpr(value.right, ctx)
    if delta is None:
        return None
    if value.op == "-":
        delta = -delta
    invariant_breakers = (
        delta.free_vars() & (assigned_names | {loop.var})
    )
    if invariant_breakers:
        return None
    # iteration-start value: entry value + delta per completed iteration
    iterations_before = (SymExpr.var(loop.var) - lo).div_const(
        step.constant_value() or 1
    ) if step.constant_value() else None
    if iterations_before is None:
        return None
    return SymExpr.var(name) + delta * iterations_before


def _on_all_paths(graph, node) -> bool:
    """Does every entry→exit path pass through *node*?"""
    seen = {graph.entry}
    stack = [graph.entry]
    if node is graph.entry:
        return True
    while stack:
        current = stack.pop()
        if current is graph.exit:
            return False  # reached exit while avoiding node
        for succ, _ in graph.succs(current):
            if succ is node or succ in seen:
                continue
            seen.add(succ)
            stack.append(succ)
    return True


def _omega_out_symbol(gars: GARList, name: str) -> GARList:
    """Sound over-approximation removing all knowledge tied to *name*."""
    from ..regions import GAR
    from ..regions.ranges import Range
    from ..regions.region import OMEGA_DIM, RegularRegion
    from ..symbolic import Predicate

    out = []
    for gar in gars:
        if not gar.contains_var(name):
            out.append(gar)
            continue
        dims = [
            OMEGA_DIM
            if isinstance(d, Range) and d.contains_var(name)
            else d
            for d in gar.region.dims
        ]
        guard = gar.guard
        if guard.is_cnf() and guard.contains(name):
            kept = [c for c in guard.clauses if name not in c.free_vars()]
            guard = Predicate.of_clauses(kept) if kept else Predicate.true()
        out.append(
            GAR(guard, RegularRegion(gar.array, dims), exact=False)
        )
    return GARList(out)


def summarize_loop(
    analyzer, loop: LoopNode, ctx: ConversionContext
) -> LoopSummaryRecord:
    """Compute the full :class:`LoopSummaryRecord` for *loop*.

    When the analysis budget runs out mid-computation, degrades to the
    conservative whole-array record instead of propagating the failure —
    the paper's contract: never crash, fall back to the safe summary.
    """
    try:
        return _summarize_loop_exact(analyzer, loop, ctx)
    except BudgetExceeded as exc:
        return conservative_loop_record(analyzer, loop, ctx, exc.reason)


@timed("sum_loop")
def _summarize_loop_exact(
    analyzer, loop: LoopNode, ctx: ConversionContext
) -> LoopSummaryRecord:
    COUNTERS.sum_loop_calls += 1
    _budget_charge(1)
    cmp = analyzer.comparer
    inner_ctx = ctx.with_index(loop.var)
    body = analyzer.sum_segment(loop.body, inner_ctx)
    lo = to_symexpr(loop.start, ctx)
    hi = to_symexpr(loop.stop, ctx)
    step = (
        to_symexpr(loop.step, ctx) if loop.step is not None else SymExpr.const(1)
    )
    negative = False
    bounds_known = True
    if lo is None:
        lo = ctx.fresh_opaque("lo")
        bounds_known = False
    if hi is None:
        hi = ctx.fresh_opaque("hi")
        bounds_known = False
    if step is None:
        step = ctx.fresh_opaque("step")
        negative = True  # unknown sign: same conservative treatment
    else:
        sv = step.constant_value()
        if sv is not None and sv < 0:
            # normalize a downward loop to its element set; iteration
            # *order* is lost, so the <i / >i sets become inexact
            lo, hi = hi, lo
            step = -step
            negative = True
        elif sv is not None and sv == 0:
            step = SymExpr.const(1)
            negative = True

    i = loop.var
    mod_i, ue_i = fix_iteration_varying(
        analyzer, loop, body.mod, body.ue, inner_ctx, lo, step,
        allow_induction=not negative,
    )

    # rename the index before expanding over prior/later iterations so the
    # free occurrence of i (the "current" iteration) is not captured
    fresh = f"{i}%{next(_index_renames)}"
    other_iter = {i: SymExpr.var(fresh)}
    mod_prev = mod_i.substitute(other_iter)
    mod_next = mod_prev

    i_var = SymExpr.var(i)
    if negative or loop.has_premature_exit:
        # order-dependent sets are over-approximations: expand over the
        # whole range and mark inexact (they must not kill)
        mod_lt = expand_gar_list(mod_prev, fresh, lo, hi, step, cmp).inexact()
        mod_gt = mod_lt
    else:
        mod_lt = expand_gar_list(mod_prev, fresh, lo, i_var - step, step, cmp)
        mod_gt = expand_gar_list(mod_next, fresh, i_var + step, hi, step, cmp)

    if not ctx.symbolic and not bounds_known:
        # T1 ablation: a non-symbolic analyzer cannot represent regions
        # bounded by unknown values — the opaque-bound summaries are kept
        # only as over-approximations (they must never kill)
        mod_i = mod_i.inexact()
        mod_lt = mod_lt.inexact()
        mod_gt = mod_gt.inexact()

    ue_i_out = subtract_lists(ue_i, mod_lt, cmp)
    ue = expand_gar_list(ue_i_out, i, lo, hi, step, cmp)
    mod = expand_gar_list(mod_i, i, lo, hi, step, cmp)
    # the loop writes its own index variable (final value unknown to
    # purely structural readers, but the storage is modified)
    mod = union_lists(mod, GARList.of(scalar_gar(i)), cmp)
    if loop.has_premature_exit:
        mod = mod.inexact()

    record = LoopSummaryRecord(
        routine=ctx.table.unit.name,
        var=i,
        lo=lo,
        hi=hi,
        step=step,
        mod_i=mod_i,
        ue_i=ue_i,
        mod_lt=mod_lt,
        mod_gt=mod_gt,
        mod=mod,
        ue=ue,
        has_premature_exit=loop.has_premature_exit,
        negative_step=negative,
    )
    analyzer.stats.loops_summarized += 1
    return record


def transfer_loop(
    analyzer, loop: LoopNode, below: Summary, ctx: ConversionContext
) -> Summary:
    """Combine a loop's summary with the sets flowing up from below it."""
    cmp = analyzer.comparer
    record = analyzer.loop_summary(loop, ctx)
    # scalars assigned inside the loop (including the index) have unknown
    # values below; rename their value occurrences to fresh opaques
    assigned = {
        g.array
        for g in record.mod
        if not ctx.table.is_array(g.array)
    } | {loop.var}
    bindings = {name: ctx.fresh_opaque(name) for name in sorted(assigned)}
    below = below.substitute(bindings)
    mod_in = union_lists(record.mod, below.mod, cmp)
    ue_in = union_lists(record.ue, subtract_lists(below.ue, record.mod, cmp), cmp)
    # loop bound expressions are evaluated on entry: they read scalars
    for expr in (loop.start, loop.stop, loop.step):
        if expr is not None:
            ue_in = union_lists(ue_in, collect_uses(expr, ctx), cmp)
    return Summary(mod_in, ue_in)
