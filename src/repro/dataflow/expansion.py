"""The *expansion* function of section 4.1.

Given a GAR ``T`` mentioning a loop index ``i`` with ``lo <= i <= hi``
(step ``s``), expansion produces the union over all iterations:

* index constraints in the guard are solved and folded into tightened
  bounds (``max(l', lo) <= i <= min(u', hi)``), then deleted;
* an equality constraint ``i == e`` pins the index: substitute and keep
  the bounds as a guard condition (exact);
* a dimension ``(f(i) : g(i) : s_d)`` with ``f, g`` linear in ``i``
  expands to ``(min_i f : max_i g : ...)``; for point dimensions the
  result is exact with step ``|coeff| * s``; for sliding windows the
  result is exact when consecutive windows provably overlap or abut,
  otherwise it is kept as an inexact over-approximation;
* a dimension in which ``i`` appears non-linearly — or ``i`` appearing in
  several dimensions — becomes Ω (paper's rule), marking the GAR inexact.

``max``/``min`` over the collected bound candidates are resolved with the
comparer or emitted as explicit guard case splits, exactly like the range
operations of section 3.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..regions import GAR, GARList, Range, RegularRegion
from ..regions.gar_simplify import simplify_gar_list
from ..regions.ranges import _max_cases, _min_cases
from ..regions.region import OMEGA_DIM
from ..symbolic import Comparer, Predicate, Relation, RelOp, SymExpr
from ..symbolic.predicate import Disjunction


def expand_gar_list(
    gars: GARList,
    index: str,
    lo: SymExpr,
    hi: SymExpr,
    step: SymExpr,
    cmp: Comparer,
) -> GARList:
    """Expansion of every member, simplified."""
    out = GARList.empty()
    for gar in gars:
        out = out.union(expand_gar(gar, index, lo, hi, step, cmp))
    return simplify_gar_list(out, cmp)


def expand_gar(
    gar: GAR,
    index: str,
    lo: SymExpr,
    hi: SymExpr,
    step: SymExpr,
    cmp: Comparer,
) -> GARList:
    """Expansion of one GAR by a loop index (section 4.1)."""
    if not gar.contains_var(index):
        # iterations don't change the set; it occurs iff the loop runs
        return GARList.of(gar.and_guard(Predicate.le(lo, hi)))
    kept, lowers, uppers, pinned, residual = _split_guard(gar.guard, index)
    lowers = [lo] + lowers
    uppers = [hi] + uppers
    exact = gar.exact and not residual

    if pinned is not None:
        # i == e: one iteration touches the region — substitute and bound
        bindings = {index: pinned}
        guard = kept.substitute(bindings)
        for l in lowers:
            guard = guard & Predicate.le(l.substitute(bindings), pinned)
        for u in uppers:
            guard = guard & Predicate.le(pinned, u.substitute(bindings))
        sc = step.constant_value()
        if sc is not None and sc == 1:
            pass  # every integer in [lo, hi] is an iterate
        else:
            # must also lie on the iteration grid — not representable in
            # general; keep the set but mark inexact
            exact = False
        region = gar.region.substitute(bindings)
        return GARList.of(GAR(guard, region, exact))

    for_each_bound = _bound_cases(lowers, uppers, cmp)
    if for_each_bound is None:
        # too many irreducible bound candidates: give up precisely,
        # over-approximate with Ω dimensions
        region = _omega_out_index(gar.region, index)
        return GARList.of(GAR(kept, region, exact=False))
    results: list[GAR] = []
    for extra, low, high in for_each_bound:
        expanded = _expand_region(
            gar.region, index, low, high, step, cmp.refine(kept & extra)
        )
        if expanded is None:
            region = _omega_out_index(gar.region, index)
            results.append(GAR(kept & extra, region, exact=False))
            continue
        region, region_exact, bindings_guard = expanded
        guard = kept & extra & bindings_guard & Predicate.le(low, high)
        if guard.contains(index):
            # index leaked through substitution (shouldn't happen) — drop
            guard = Predicate.unknown()
        results.append(GAR(guard, region, exact and region_exact))
    return GARList(results)


def _split_guard(
    guard: Predicate, index: str
) -> tuple[Predicate, list[SymExpr], list[SymExpr], Optional[SymExpr], bool]:
    """Partition guard clauses by their use of *index*.

    Returns ``(kept, lower_bounds, upper_bounds, pinned_value, residual)``:
    clauses free of the index are *kept*; unit inequality clauses linear in
    the index contribute bounds; a unit equality pins the index; anything
    else referencing the index is *residual* (dropped, result inexact).
    """
    if not guard.is_cnf():
        if guard.is_unknown():
            return Predicate.unknown(), [], [], None, True
        return guard, [], [], None, False
    kept = Predicate.true()
    lowers: list[SymExpr] = []
    uppers: list[SymExpr] = []
    pinned: Optional[SymExpr] = None
    residual = False
    for clause in guard.clauses:
        if index not in clause.free_vars():
            kept = kept & Predicate.of_clauses([clause])
            continue
        if not clause.is_unit():
            residual = True
            continue
        atom = clause.unit_atom()
        if not isinstance(atom, Relation) or not atom.expr.is_linear_in(index):
            residual = True
            continue
        coeff = atom.expr.coeff_of_var(index)
        rest = atom.expr - SymExpr.var(index).scaled(coeff)
        if atom.op is RelOp.EQ and abs(coeff) == 1:
            # coeff * i + rest == 0  =>  i == -rest / coeff
            if pinned is not None:
                residual = True  # two pins: don't silently drop one
                continue
            pinned = (-rest).div_const(coeff)
            continue
        if atom.op is RelOp.LE and coeff == 1:
            uppers.append(-rest)  # i <= -rest
            continue
        if atom.op is RelOp.LE and coeff == -1:
            lowers.append(rest)  # i >= rest
            continue
        residual = True
    return kept, lowers, uppers, pinned, residual


def _bound_cases(
    lowers: list[SymExpr], uppers: list[SymExpr], cmp: Comparer
) -> Optional[list[tuple[Predicate, SymExpr, SymExpr]]]:
    """All (guard, L, H) alternatives for ``L = max(lowers), H = min(uppers)``."""
    low_alts = _fold_cases(lowers, cmp, _max_cases)
    high_alts = _fold_cases(uppers, cmp, _min_cases)
    if low_alts is None or high_alts is None:
        return None
    out = []
    for pl, low in low_alts:
        for ph, high in high_alts:
            pred = pl & ph
            if not pred.is_false():
                out.append((pred, low, high))
    return out


def _fold_cases(
    exprs: list[SymExpr], cmp: Comparer, case_fn
) -> Optional[list[tuple[Predicate, SymExpr]]]:
    alts: list[tuple[Predicate, SymExpr]] = [(Predicate.true(), exprs[0])]
    for expr in exprs[1:]:
        new_alts: list[tuple[Predicate, SymExpr]] = []
        for pred, current in alts:
            for p2, winner in case_fn(current, expr, cmp.refine(pred)):
                combined = pred & p2
                if not combined.is_false():
                    new_alts.append((combined, winner))
        alts = new_alts
        if len(alts) > 4:
            return None
    return alts


def _omega_out_index(region: RegularRegion, index: str) -> RegularRegion:
    dims = [
        OMEGA_DIM
        if (isinstance(d, Range) and d.contains_var(index))
        else d
        for d in region.dims
    ]
    return RegularRegion(region.array, dims)


def _expand_region(
    region: RegularRegion,
    index: str,
    low: SymExpr,
    high: SymExpr,
    step: SymExpr,
    cmp: Comparer,
) -> Optional[tuple[RegularRegion, bool, Predicate]]:
    """Expand every dimension; returns (region, exact, extra_guard) or None."""
    index_dims = region.dims_containing(index)
    if not index_dims:
        return region, True, Predicate.true()
    exact = True
    extra = Predicate.true()
    if len(index_dims) > 1:
        # paper's rule: index in several dimensions — mark them Ω
        return _omega_out_index(region, index), False, Predicate.true()
    dims = list(region.dims)
    for pos in index_dims:
        dim = dims[pos]
        assert isinstance(dim, Range)
        result = _expand_dim(dim, index, low, high, step, cmp)
        if result is None:
            dims[pos] = OMEGA_DIM
            exact = False
            continue
        new_dim, dim_exact = result
        dims[pos] = new_dim
        exact = exact and dim_exact
    return RegularRegion(region.array, dims), exact, extra


def _split_linear(expr: SymExpr, index: str) -> Optional[tuple[SymExpr, SymExpr]]:
    """``expr = q * index + r`` with ``q``/``r`` free of *index*, or None.

    Unlike :meth:`SymExpr.is_linear_in`, the coefficient ``q`` may be
    symbolic (``m * i`` splits into ``q = m``) — needed to expand
    induction subscripts with symbolic strides.
    """
    from ..symbolic.terms import Monomial

    q = SymExpr()
    r = SymExpr()
    for mono, coeff in expr.terms:
        power = mono.power_of(index)
        if power == 0:
            r = r + SymExpr({mono: coeff})
        elif power == 1:
            q = q + SymExpr({mono.divide_by_var(index): coeff})
        else:
            return None
    if q.contains(index):
        return None
    return q, r


def _expand_dim(
    dim: Range,
    index: str,
    low: SymExpr,
    high: SymExpr,
    step: SymExpr,
    cmp: Comparer,
) -> Optional[tuple[Range, bool]]:
    f, g, s = dim.lo, dim.hi, dim.step
    if s.contains(index):
        return None
    if f == g:
        split = _split_linear(f, index)
        if split is not None:
            q, r = split
            qv = q.constant_value()
            if qv is None:
                # symbolic stride: the iterates form the progression
                # (q*low + r : q*high + r : q*step) when q > 0
                sign = cmp.gt(q, 0)
                if sign is True:
                    lo_val = q * low + r
                    hi_val = q * high + r
                    return Range(lo_val, hi_val, q * step), True
                if sign is False and cmp.lt(q, 0) is True:
                    return Range(q * high + r, q * low + r, -(q * step)), True
                return None
    if not (f.is_linear_in(index) and g.is_linear_in(index)):
        return None
    a = f.coeff_of_var(index)
    b = g.coeff_of_var(index)
    at_low = {index: low}
    at_high = {index: high}
    if f == g:
        # point dimension: {f(i) : i = low..high step} — an arithmetic
        # progression with stride |a| * step, exact.
        stride = step.scaled(abs(a))
        if a > 0:
            return Range(f.substitute(at_low), f.substitute(at_high), stride), True
        return Range(f.substitute(at_high), f.substitute(at_low), stride), True
    f_min = f.substitute(at_low) if a >= 0 else f.substitute(at_high)
    g_max = g.substitute(at_high) if b >= 0 else g.substitute(at_low)
    sc = s.constant_value()
    if sc is not None and sc == 1:
        # window family: exact if consecutive windows overlap or abut:
        # for all i: g(i) + 1 >= f(i + step)  (f side moving by a*step)
        shift = f.substitute({index: SymExpr.var(index) + step})
        covered = cmp.refine(
            Predicate.le(low, SymExpr.var(index))
            & Predicate.le(SymExpr.var(index), high - step)
        ).le(shift, g + 1)
        if covered is True:
            return Range(f_min, g_max, 1), True
        if a == 0 and b == 0:
            # i only in the guard (already handled) — not reachable here
            return Range(f_min, g_max, 1), True
        return Range(f_min, g_max, 1), False
    # non-unit window step: over-approximate with a unit-step envelope
    return Range(f_min, g_max, 1), False
