"""``SUM_segment``: backward propagation over a flow subgraph (section 4.1).

Nodes are visited in reverse topological order (the subgraph is a DAG).
For each node::

    mod_in(n) = F_n( U_{p in succ(n)} mod_in(p) )
    ue_in(n)  = F_n( U_{p in succ(n)} ue_in(p) )

where ``F_n`` is the node transfer (basic block, loop, call, condensed),
and — the heart of the paper — contributions reaching an IF-condition node
through its True/False edges are first qualified by the condition (or its
negation) as a guard.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..fortran.ast_nodes import Apply, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    EntryNode,
    ExitNode,
    HSGNode,
    IfConditionNode,
    LoopNode,
)
from ..regions import GAR, GARList
from ..regions.gar_ops import union_lists
from ..regions.gar_simplify import simplify_gar_list
from ..symbolic import Predicate
from .convert import ConversionContext, to_predicate
from .summary import Summary, collect_uses, scalar_gar
from .sum_bb import transfer_basic_block
from .sum_call import transfer_call
from .sum_loop import transfer_loop


def sum_segment(
    analyzer,
    graph: FlowGraph,
    ctx: ConversionContext,
    record_below: dict[HSGNode, Summary] | None = None,
) -> Summary:
    """Propagate (MOD, UE) backward from exit to entry; returns the
    summary at the entry point.

    When *record_below* is given, it is filled with each node's merged
    successor summary — "what the rest of the segment still reads/writes
    below this node" — which the copy-out analysis consumes.
    """
    cmp = analyzer.comparer
    summaries: dict[HSGNode, Summary] = {}
    for node in graph.reverse_topological():
        analyzer.stats.nodes_visited += 1
        mod_below = GARList.empty()
        ue_below = GARList.empty()
        branch_pred: Predicate | None = None
        if isinstance(node, IfConditionNode):
            branch_pred = analyzer.condition_predicate(node, ctx)
        for succ, label in graph.succs(node):
            contribution = summaries[succ]
            if branch_pred is not None and label is not None:
                guard = branch_pred if label else branch_pred.negate()
                contribution = Summary(
                    contribution.mod.and_guard(guard),
                    contribution.ue.and_guard(guard),
                )
            mod_below = mod_below.union(contribution.mod)
            ue_below = ue_below.union(contribution.ue)
        mod_below = simplify_gar_list(mod_below, cmp)
        ue_below = simplify_gar_list(ue_below, cmp)
        below = Summary(mod_below, ue_below)
        if record_below is not None:
            record_below[node] = below
        summaries[node] = _transfer(analyzer, node, below, ctx)
    if graph.entry not in summaries:
        raise AnalysisError("flow subgraph without reachable entry")
    return summaries[graph.entry]


def _transfer(
    analyzer, node: HSGNode, below: Summary, ctx: ConversionContext
) -> Summary:
    if isinstance(node, (EntryNode, ExitNode)):
        return below
    if isinstance(node, BasicBlockNode):
        return transfer_basic_block(analyzer, node, below, ctx)
    if isinstance(node, IfConditionNode):
        # the condition itself reads its operands before branching
        uses = collect_uses(node.cond, ctx)
        return Summary(
            below.mod, union_lists(below.ue, uses, analyzer.comparer)
        )
    if isinstance(node, LoopNode):
        return transfer_loop(analyzer, node, below, ctx)
    if isinstance(node, CallNode):
        return transfer_call(analyzer, node, below, ctx)
    if isinstance(node, CondensedNode):
        return _transfer_condensed(analyzer, node, below, ctx)
    raise AnalysisError(f"no transfer for node kind {node.kind}")


def _transfer_condensed(
    analyzer, node: CondensedNode, below: Summary, ctx: ConversionContext
) -> Summary:
    """Conservative summary for a condensed backward-GOTO cycle: every
    array referenced inside is wholly read and written (Ω), every scalar
    assigned inside has an unknown value and cell state."""
    arrays: set[str] = set()
    scalars_written: set[str] = set()
    scalars_read: set[str] = set()

    def scan_expr(expr) -> None:
        for sub in expr.walk():
            if isinstance(sub, Apply) and sub.is_array:
                arrays.add(sub.name)
            elif isinstance(sub, NameRef):
                if ctx.table.is_array(sub.name):
                    arrays.add(sub.name)
                elif sub.name != "*":
                    scalars_read.add(sub.name)

    def scan_member(member: HSGNode) -> None:
        from ..fortran.ast_nodes import Assign, IoStmt

        if isinstance(member, BasicBlockNode):
            for stmt in member.stmts:
                if isinstance(stmt, Assign):
                    scan_expr(stmt.value)
                    if isinstance(stmt.target, Apply):
                        arrays.add(stmt.target.name)
                        for arg in stmt.target.args:
                            scan_expr(arg)
                    else:
                        scalars_written.add(stmt.target.name)
                elif isinstance(stmt, IoStmt):
                    for item in stmt.items:
                        scan_expr(item)
                        if stmt.kind == "read":
                            if isinstance(item, Apply):
                                arrays.add(item.name)
                            elif isinstance(item, NameRef):
                                if ctx.table.is_array(item.name):
                                    arrays.add(item.name)
                                else:
                                    scalars_written.add(item.name)
        elif isinstance(member, IfConditionNode):
            scan_expr(member.cond)
        elif isinstance(member, LoopNode):
            scalars_written.add(member.var)
            scan_expr(member.start)
            scan_expr(member.stop)
            if member.step is not None:
                scan_expr(member.step)
            for inner in member.body.nodes:
                scan_member(inner)
        elif isinstance(member, CallNode):
            for arg in member.call.args:
                scan_expr(arg)
                if isinstance(arg, NameRef) and ctx.table.is_array(arg.name):
                    arrays.add(arg.name)
                if isinstance(arg, NameRef) and not ctx.table.is_array(arg.name):
                    scalars_written.add(arg.name)
        elif isinstance(member, CondensedNode):
            for inner in member.members:
                scan_member(inner)

    for member in node.members:
        scan_member(member)

    cmp = analyzer.comparer
    mod = GARList.empty()
    ue = GARList.empty()
    for array in sorted(arrays):
        rank = ctx.table.arrays[array].rank if array in ctx.table.arrays else 1
        omega = GAR.omega(array, rank)
        mod = mod.add(omega)
        ue = ue.add(omega)
    for name in sorted(scalars_written):
        mod = mod.add(scalar_gar(name).inexact())
    for name in sorted(scalars_read | scalars_written):
        ue = ue.add(scalar_gar(name))
    bindings = {n: ctx.fresh_opaque(n) for n in sorted(scalars_written)}
    below = below.substitute(bindings)
    mod_in = union_lists(mod, below.mod, cmp)
    ue_in = union_lists(ue, below.ue, cmp)  # inexact mod: no kills
    return Summary(mod_in, ue_in)
