"""Downward-exposed use sets (``DE``), the paper's section 3.2.2 footnote.

The loop-carried anti-dependence formula ``UE_i ∩ MOD_{>i}`` is valid only
once flow and output dependences are disproved; "if loop-carried anti-
dependences are considered separately, they should be detected using
``DE_i`` instead of ``UE_i``, where ``DE_i`` is the *downwards exposed*
use set of iteration i" — the uses whose element is **not overwritten
later** in the same iteration.

DE is the temporal mirror of UE, computed by forward propagation (nodes
in topological order, statements walked forward, writes killing the uses
accumulated so far).  Two mechanisms make the forward direction as sharp
as the backward one:

* **edge guards** — contributions leaving an IF condition through its
  True/False edge are qualified by the condition/negation (mirrors the
  backward pass), so branch-local kills stay conditional;
* **reaching guards** — every node carries ``R(n)``, the disjunction over
  incoming paths of their branch conditions (``R(join after IF) = R(cond)``
  because ``c ∨ ¬c`` folds to True); accesses *generated* at ``n`` are
  qualified by ``R(n)``, which the backward pass gets for free by carrying
  sets through the condition node;
* **forward value bindings** — scalar definitions bind the variable for
  all later conversions (a per-path environment, merged at joins with
  disagreeing values becoming fresh opaques), so the resulting sets are
  expressed in segment-entry terms exactly like ``UE``.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..fortran.ast_nodes import Apply, Assign, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    EntryNode,
    ExitNode,
    HSGNode,
    IfConditionNode,
    LoopNode,
)
from ..regions import GARList
from ..regions.gar_ops import subtract_lists, union_lists
from ..regions.gar_simplify import simplify_gar_list
from ..symbolic import Predicate, SymExpr
from .convert import ConversionContext, to_predicate
from .expansion import expand_gar_list
from .summary import Summary, collect_uses, reference_gar, scalar_gar
from .sum_bb import _scalar_value

Bindings = dict[str, SymExpr]


def _merge_bindings(maps: list[Bindings], ctx: ConversionContext) -> Bindings:
    """Join point: keep agreeing values, opaque out the disagreements."""
    if not maps:
        return {}
    if len(maps) == 1:
        return dict(maps[0])
    keys = set()
    for m in maps:
        keys |= set(m)
    merged: Bindings = {}
    for key in keys:
        values = {m.get(key, SymExpr.var(key)) for m in maps}
        if len(values) == 1:
            merged[key] = values.pop()
        else:
            merged[key] = ctx.fresh_opaque(key)
    return merged


def _bound_ctx(ctx: ConversionContext, bindings: Bindings) -> ConversionContext:
    return ConversionContext(
        ctx.table,
        ctx.symbolic,
        ctx.if_conditions,
        ctx.active_indices,
        dict(bindings),
        ctx.index_array_forms,
    )


def downward_segment(
    analyzer, graph: FlowGraph, ctx: ConversionContext
) -> GARList:
    """DE of a flow subgraph: forward propagation entry → exit."""
    cmp = analyzer.comparer
    de_out: dict[HSGNode, GARList] = {}
    bind_out: dict[HSGNode, Bindings] = {}
    reach: dict[HSGNode, Predicate] = {}
    for node in graph.topological():
        de_above = GARList.empty()
        incoming_binds: list[Bindings] = []
        r: Predicate | None = None
        for pred, label in graph.preds(node):
            contribution = de_out.get(pred, GARList.empty())
            r_pred = reach.get(pred, Predicate.true())
            if isinstance(pred, IfConditionNode) and label is not None:
                branch = analyzer.condition_predicate(pred, ctx)
                guard = branch if label else branch.negate()
                contribution = contribution.and_guard(guard)
                r_edge = r_pred & guard
            else:
                r_edge = r_pred
            de_above = de_above.union(contribution)
            incoming_binds.append(bind_out.get(pred, {}))
            r = r_edge if r is None else (r | r_edge)
        reach[node] = Predicate.true() if r is None else r
        de_above = simplify_gar_list(de_above, cmp)
        bindings = _merge_bindings(incoming_binds, ctx)
        de_out[node], bind_out[node] = _transfer_forward(
            analyzer, node, de_above, bindings, reach[node], ctx
        )
    if graph.exit not in de_out:
        raise AnalysisError("flow subgraph without reachable exit")
    return de_out[graph.exit]


def _transfer_forward(
    analyzer,
    node: HSGNode,
    de: GARList,
    bindings: Bindings,
    reaching: Predicate,
    ctx: ConversionContext,
) -> tuple[GARList, Bindings]:
    cmp = analyzer.comparer
    local = _bound_ctx(ctx, bindings)
    if isinstance(node, (EntryNode, ExitNode)):
        return de, bindings
    if isinstance(node, IfConditionNode):
        uses = collect_uses(node.cond, local).and_guard(reaching)
        return union_lists(de, uses, cmp), bindings
    if isinstance(node, BasicBlockNode):
        for stmt in node.stmts:
            de, bindings = _statement_forward(
                analyzer, stmt, de, bindings, reaching, ctx
            )
        return de, bindings
    if isinstance(node, LoopNode):
        return _loop_forward(analyzer, node, de, bindings, reaching, ctx)
    if isinstance(node, CallNode):
        return _call_forward(analyzer, node, de, bindings, reaching, ctx)
    if isinstance(node, CondensedNode):
        # conservative: nothing killed, every referenced array maybe used
        from .sum_segment import _transfer_condensed

        summary = _transfer_condensed(analyzer, node, Summary.empty(), ctx)
        new_bindings = dict(bindings)
        for gar in summary.mod:
            if not ctx.table.is_array(gar.array):
                new_bindings[gar.array] = ctx.fresh_opaque(gar.array)
        return union_lists(de, summary.ue.inexact(), cmp), new_bindings
    raise AnalysisError(f"no forward transfer for {node.kind}")


def _statement_forward(
    analyzer,
    stmt,
    de: GARList,
    bindings: Bindings,
    reaching: Predicate,
    ctx: ConversionContext,
) -> tuple[GARList, Bindings]:
    from ..fortran.ast_nodes import (
        CommonStmt,
        Continue,
        Declaration,
        DimensionStmt,
        IoStmt,
        MiscDecl,
        ParameterStmt,
    )

    cmp = analyzer.comparer
    local = _bound_ctx(ctx, bindings)
    if isinstance(stmt, Assign):
        target = stmt.target
        # reads happen first: exposed (given reachability) unless a later
        # write kills them
        uses = collect_uses(stmt.value, local)
        if isinstance(target, Apply) and target.is_array:
            for sub in target.args:
                uses = uses.union(collect_uses(sub, local))
            de = union_lists(de, uses.and_guard(reaching), cmp)
            write = GARList.of(reference_gar(target, local))
            return subtract_lists(de, write, cmp), bindings
        de = union_lists(de, uses.and_guard(reaching), cmp)
        name = target.name
        value = _scalar_value(stmt, name, local)
        new_bindings = dict(bindings)
        new_bindings[name] = value
        de = subtract_lists(de, GARList.of(scalar_gar(name)), cmp)
        return de, new_bindings
    if isinstance(stmt, IoStmt):
        if stmt.kind == "read":
            new_bindings = dict(bindings)
            for item in stmt.items:
                if isinstance(item, NameRef) and not ctx.table.is_array(
                    item.name
                ):
                    new_bindings[item.name] = ctx.fresh_opaque(item.name)
                    de = subtract_lists(
                        de, GARList.of(scalar_gar(item.name)), cmp
                    )
            return de, new_bindings
        for item in stmt.items:
            de = union_lists(
                de, collect_uses(item, local).and_guard(reaching), cmp
            )
        return de, bindings
    if isinstance(
        stmt,
        (Continue, MiscDecl, Declaration, DimensionStmt, ParameterStmt,
         CommonStmt),
    ):
        return de, bindings
    raise AnalysisError(f"unexpected statement {type(stmt).__name__}")


def _loop_forward(
    analyzer,
    loop: LoopNode,
    de: GARList,
    bindings: Bindings,
    reaching: Predicate,
    ctx: ConversionContext,
) -> tuple[GARList, Bindings]:
    cmp = analyzer.comparer
    local = _bound_ctx(ctx, bindings)
    record = analyzer.loop_summary(loop, local)
    loop_de = analyzer.loop_de(loop, local)
    # the loop bounds are read on entry
    for expr in (loop.start, loop.stop, loop.step):
        if expr is not None:
            de = union_lists(
                de, collect_uses(expr, local).and_guard(reaching), cmp
            )
    de = subtract_lists(de, record.mod, cmp)
    # scalars assigned in the loop have unknown values afterwards
    new_bindings = dict(bindings)
    for gar in record.mod:
        if not ctx.table.is_array(gar.array):
            new_bindings[gar.array] = ctx.fresh_opaque(gar.array)
    new_bindings[loop.var] = ctx.fresh_opaque(loop.var)
    return union_lists(de, loop_de.and_guard(reaching), cmp), new_bindings


def _call_forward(
    analyzer,
    node: CallNode,
    de: GARList,
    bindings: Bindings,
    reaching: Predicate,
    ctx: ConversionContext,
) -> tuple[GARList, Bindings]:
    from .sum_call import _map_to_actuals, _opaque_call

    cmp = analyzer.comparer
    local = _bound_ctx(ctx, bindings)
    callee = node.callee
    known = callee in analyzer.hsg.analyzed.unit_names()
    if not analyzer.options.interprocedural or not known:
        effect = _opaque_call(node, local)
        call_de = effect.ue.inexact()  # everything it may read, maybe exposed
        call_mod = effect.mod
    else:
        callee_de = analyzer.routine_de(callee)
        mapped = _map_to_actuals(
            analyzer,
            Summary(analyzer.routine_summary(callee).mod, callee_de),
            node,
            local,
        )
        call_de = mapped.ue
        call_mod = mapped.mod
    de = subtract_lists(de, call_mod, cmp)
    new_bindings = dict(bindings)
    for gar in call_mod:
        if not ctx.table.is_array(gar.array):
            new_bindings[gar.array] = ctx.fresh_opaque(gar.array)
    return union_lists(de, call_de.and_guard(reaching), cmp), new_bindings


def loop_de_sets(
    analyzer, loop: LoopNode, ctx: ConversionContext
) -> tuple[GARList, GARList]:
    """``(DE_i, DE)`` of a loop: per-iteration and whole-loop downward
    exposure (the latter subtracts later iterations' writes and expands)."""
    from .sum_loop import fix_varying_lists

    cmp = analyzer.comparer
    inner_ctx = ctx.with_index(loop.var)
    de_i = downward_segment(analyzer, loop.body, inner_ctx)
    record = analyzer.loop_summary(loop, ctx)
    (de_i,) = fix_varying_lists(
        analyzer, loop, record.mod_i, [de_i], inner_ctx,
        record.lo, record.step,
        allow_induction=not record.negative_step,
    )
    de_out = subtract_lists(de_i, record.mod_gt, cmp)
    de = expand_gar_list(
        de_out, loop.var, record.lo, record.hi, record.step, cmp
    )
    if loop.has_premature_exit or record.negative_step:
        de = de.inexact()
        de_i = de_i.inexact()
    return de_i, de
