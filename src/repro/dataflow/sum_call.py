"""``SUM_call``: call-node summaries and formal→actual mapping (section 4.1).

The callee's routine summary is computed once (bottom-up over the acyclic
call graph, cached) in terms of its formal parameters and COMMON names,
then mapped at each call site:

* an array formal bound to a whole-array actual renames the region;
* an array formal bound to anything else (array element, expression)
  degrades to Ω of the actual's array (inexact);
* a scalar formal contributes (a) a *value* binding — the actual's
  symbolic value replaces the formal in guards and subscripts — and
  (b) a *storage* mapping for call-by-reference effects: MOD/UE cells of
  the formal map onto the actual variable when it is a plain scalar;
* callee-local storage is dropped (no SAVE semantics), and callee-local
  value symbols are renamed to fresh opaques;
* COMMON names pass through unchanged (consistent member naming assumed).

With interprocedural analysis disabled (the T3 ablation), or for calls to
routines outside the program, the call is opaque: every array reachable by
the callee is Ω for both MOD and UE.
"""

from __future__ import annotations

from typing import Optional

from ..errors import BudgetExceeded
from ..fortran.ast_nodes import Apply, Expr, NameRef
from ..hsg.nodes import CallNode
from ..perf.profiler import COUNTERS, timed
from ..regions import GAR, GARList
from ..resilience.budget import charge as _budget_charge
from ..regions.gar_ops import subtract_lists, union_lists
from ..symbolic import SymExpr
from .convert import ConversionContext, to_symexpr
from .summary import Summary, collect_uses, scalar_gar


def transfer_call(
    analyzer, node: CallNode, below: Summary, ctx: ConversionContext
) -> Summary:
    """Combine a call's summary with the sets below it."""
    cmp = analyzer.comparer
    call_summary = summarize_call(analyzer, node, ctx)
    # scalars possibly written by the call have unknown values below it
    assigned = {
        g.array for g in call_summary.mod if not ctx.table.is_array(g.array)
    }
    bindings = {name: ctx.fresh_opaque(name) for name in sorted(assigned)}
    below = below.substitute(bindings)
    mod_in = union_lists(call_summary.mod, below.mod, cmp)
    ue_in = union_lists(
        call_summary.ue, subtract_lists(below.ue, call_summary.mod, cmp), cmp
    )
    return Summary(mod_in, ue_in)


def summarize_call(
    analyzer, node: CallNode, ctx: ConversionContext
) -> Summary:
    """The call's own (MOD, UE) contribution, in caller terms.

    When the analysis budget runs out while summarizing (or mapping) the
    callee, degrades to the opaque-call treatment — arrays passed or in
    COMMON become Ω — exactly the conservative summary the T3 ablation
    uses, instead of propagating the failure.
    """
    try:
        return _summarize_call_exact(analyzer, node, ctx)
    except BudgetExceeded:
        analyzer.stats.budget_degradations += 1
        COUNTERS.budget_fallbacks += 1
        return _opaque_call(node, ctx)


@timed("sum_call")
def _summarize_call_exact(
    analyzer, node: CallNode, ctx: ConversionContext
) -> Summary:
    COUNTERS.sum_call_calls += 1
    _budget_charge(1)
    callee = node.callee
    known = callee in analyzer.hsg.analyzed.unit_names()
    if not analyzer.options.interprocedural or not known:
        return _opaque_call(node, ctx)
    summary = analyzer.routine_summary(callee)
    return _map_to_actuals(analyzer, summary, node, ctx)


def _opaque_call(node: CallNode, ctx: ConversionContext) -> Summary:
    """Worst-case effect: arrays passed (or in COMMON) are wholly unknown;
    scalar actuals are read and possibly written."""
    mod = GARList.empty()
    ue = GARList.empty()
    for arg in node.call.args:
        if isinstance(arg, NameRef) and ctx.table.is_array(arg.name):
            rank = ctx.table.arrays[arg.name].rank
            omega = GAR.omega(arg.name, rank)
            mod = mod.add(omega)
            ue = ue.add(omega)
            continue
        if isinstance(arg, Apply) and arg.is_array:
            rank = ctx.table.arrays[arg.name].rank
            omega = GAR.omega(arg.name, rank)
            mod = mod.add(omega)
            ue = ue.add(omega)
            for sub in arg.args:
                ue = ue.union(collect_uses(sub, ctx))
            continue
        ue = ue.union(collect_uses(arg, ctx))
        if isinstance(arg, NameRef) and not ctx.table.is_array(arg.name):
            mod = mod.add(scalar_gar(arg.name).inexact())
    for block, names in ctx.table.commons.items():
        for name in names:
            if ctx.table.is_array(name):
                rank = ctx.table.arrays[name].rank
                omega = GAR.omega(name, rank)
                mod = mod.add(omega)
                ue = ue.add(omega)
            else:
                mod = mod.add(scalar_gar(name).inexact())
                ue = ue.add(scalar_gar(name))
    return Summary(mod, ue)


def _map_to_actuals(
    analyzer, summary: Summary, node: CallNode, ctx: ConversionContext
) -> Summary:
    callee_unit = analyzer.hsg.analyzed.unit(node.callee)
    callee_table = analyzer.hsg.analyzed.table(node.callee)
    formals = callee_unit.params
    actuals = node.call.args
    cmp = analyzer.comparer

    # classify callee names
    common_names: set[str] = set()
    for names in callee_table.commons.values():
        common_names.update(names)

    value_bindings: dict[str, SymExpr] = {}
    region_map: dict[str, Optional[str]] = {}  # None = drop / Ω handled below
    omega_arrays: list[tuple[str, int]] = []
    extra_ue = GARList.empty()
    extra_mod = GARList.empty()

    for pos, formal in enumerate(formals):
        actual: Optional[Expr] = actuals[pos] if pos < len(actuals) else None
        if actual is None:
            continue
        if callee_table.is_array(formal):
            if isinstance(actual, NameRef) and ctx.table.is_array(actual.name):
                if (
                    ctx.table.arrays[actual.name].rank
                    == callee_table.arrays[formal].rank
                ):
                    region_map[formal] = actual.name
                else:
                    region_map[formal] = None
                    omega_arrays.append(
                        (actual.name, ctx.table.arrays[actual.name].rank)
                    )
            elif isinstance(actual, Apply) and actual.is_array:
                # array-element actual: offset sections unsupported — Ω
                region_map[formal] = None
                omega_arrays.append(
                    (actual.name, ctx.table.arrays[actual.name].rank)
                )
                for sub in actual.args:
                    extra_ue = extra_ue.union(collect_uses(sub, ctx))
            else:
                region_map[formal] = None
            continue
        # scalar formal
        value = to_symexpr(actual, ctx)
        if callee_table.is_logical(formal):
            if isinstance(actual, NameRef) and ctx.table.is_logical(actual.name):
                value_bindings[formal] = SymExpr.var(actual.name)
            else:
                value_bindings[formal] = ctx.fresh_opaque(formal)
        elif value is not None:
            value_bindings[formal] = value
        else:
            value_bindings[formal] = ctx.fresh_opaque(formal)
        if isinstance(actual, NameRef) and not ctx.table.is_array(actual.name):
            region_map[formal] = actual.name
        else:
            region_map[formal] = None
            # reading the formal's initial value reads the actual's parts
            extra_ue_candidate = collect_uses(actual, ctx)
            if summary.ue.for_array(formal).gars:
                extra_ue = extra_ue.union(extra_ue_candidate)

    # free value symbols that are callee locals become fresh opaques
    local_syms = {
        name
        for name in (summary.mod.free_vars() | summary.ue.free_vars())
        if name not in value_bindings
        and name not in common_names
        and "@" not in name
        and "%" not in name
    }
    for name in sorted(local_syms):
        value_bindings[name] = ctx.fresh_opaque(name)

    def map_list(gars: GARList, is_mod: bool) -> GARList:
        out = GARList.empty()
        for gar in gars:
            name = gar.array
            mapped = gar.substitute(value_bindings)
            if name in region_map:
                target = region_map[name]
                if target is None:
                    continue  # Ω replacement handled separately / dropped
                out = out.add(mapped.with_array(target))
            elif name in common_names:
                out = out.add(mapped)
            else:
                continue  # callee-local storage: no caller-visible effect
        return out

    mod = map_list(summary.mod, True)
    ue = map_list(summary.ue, False)
    for array, rank in omega_arrays:
        omega = GAR.omega(array, rank)
        mod = mod.add(omega)
        ue = ue.add(omega)
    mod = union_lists(mod, extra_mod, cmp)
    ue = union_lists(ue, extra_ue, cmp)
    # evaluating the actual argument expressions reads their scalars
    for actual in actuals:
        if isinstance(actual, NameRef):
            continue  # pass-by-reference, no evaluation
        ue = union_lists(ue, collect_uses(actual, ctx), cmp)
    return Summary(mod, ue)
