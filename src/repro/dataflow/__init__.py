"""Symbolic array dataflow analysis (the paper's core, sections 3-4).

Guarded-array-region summaries (MOD, UE and the per-iteration /
prior-iteration variants) computed by backward propagation over the HSG,
with IF conditions attached as guards, scalars substituted on the fly,
and loop summaries obtained through the expansion function.
"""

from .analyzer import SummaryAnalyzer, analyze_program_summaries
from .downward import downward_segment, loop_de_sets
from .reaching import (
    DefKind,
    ReachingDefinitions,
    ScalarDef,
    compute_reaching,
    reaching_for_unit,
)
from .context import AnalysisOptions, AnalysisStats, LoopSummaryRecord
from .convert import (
    ConversionContext,
    reset_opaque_counter,
    to_predicate,
    to_symexpr,
)
from .expansion import expand_gar, expand_gar_list
from .summary import Summary, collect_uses, reference_gar, scalar_gar, scalar_region

__all__ = [
    "AnalysisOptions",
    "AnalysisStats",
    "ConversionContext",
    "DefKind",
    "LoopSummaryRecord",
    "ReachingDefinitions",
    "ScalarDef",
    "Summary",
    "SummaryAnalyzer",
    "analyze_program_summaries",
    "collect_uses",
    "compute_reaching",
    "downward_segment",
    "expand_gar",
    "expand_gar_list",
    "loop_de_sets",
    "reaching_for_unit",
    "reference_gar",
    "reset_opaque_counter",
    "scalar_gar",
    "scalar_region",
    "to_predicate",
    "to_symexpr",
]
