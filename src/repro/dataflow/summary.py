"""Summary records and reference extraction.

A :class:`Summary` is the pair of GAR lists (``MOD``, ``UE``) the paper
propagates.  Scalars participate uniformly: a scalar ``s`` is modeled as a
rank-1 array ``s(1)`` so that scalar privatization falls out of the same
machinery (guards included); the region layer never needs to know.

:func:`collect_uses` / :func:`reference_gar` turn individual Fortran
references into GARs; subscripts outside the symbolic subset produce Ω
references (inexact — they may read/write anywhere in the array).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..fortran.ast_nodes import Apply, Expr, NameRef
from ..regions import GAR, GARList, RegularRegion
from ..symbolic import Predicate, SymExpr
from .convert import ConversionContext, to_symexpr


@dataclass(frozen=True)
class Summary:
    """``MOD`` and ``UE`` of a program segment."""

    mod: GARList = field(default_factory=GARList)
    ue: GARList = field(default_factory=GARList)

    @classmethod
    def empty(cls) -> "Summary":
        return cls(GARList.empty(), GARList.empty())

    def is_empty(self) -> bool:
        """Both sets empty?"""
        return self.mod.is_empty() and self.ue.is_empty()

    def substitute(self, bindings: dict[str, SymExpr]) -> "Summary":
        """Value substitution into both sets."""
        if not bindings:
            return self
        return Summary(self.mod.substitute(bindings), self.ue.substitute(bindings))

    def map_lists(self, fn) -> "Summary":
        """Apply *fn* to both sets."""
        return Summary(fn(self.mod), fn(self.ue))

    def __str__(self) -> str:
        return f"MOD={self.mod}  UE={self.ue}"


def scalar_region(name: str) -> RegularRegion:
    """The rank-1 region modeling scalar *name* (single cell)."""
    return RegularRegion.point(name, [SymExpr.const(1)])


def scalar_gar(name: str, guard: Predicate | None = None) -> GAR:
    """The GAR of one scalar cell, optionally guarded."""
    return GAR(guard if guard is not None else Predicate.true(), scalar_region(name))


def reference_gar(ref: Apply, ctx: ConversionContext) -> GAR:
    """The GAR of one array reference ``A(e1, ..., em)``.

    Unconvertible subscripts yield Ω dimensions (inexact).
    """
    subs: list[Optional[SymExpr]] = [to_symexpr(arg, ctx) for arg in ref.args]
    if all(s is not None for s in subs):
        return GAR.of_reference(ref.name, subs)  # type: ignore[arg-type]
    from ..regions.region import OMEGA_DIM
    from ..regions.ranges import Range

    dims = [
        Range.point(s) if s is not None else OMEGA_DIM  # type: ignore[arg-type]
        for s in subs
    ]
    return GAR(
        Predicate.true(), RegularRegion(ref.name, dims or [OMEGA_DIM]), exact=False
    )


def collect_uses(expr: Expr, ctx: ConversionContext) -> GARList:
    """All reads performed when evaluating *expr*: array elements and
    scalar variables (as rank-1 regions).  Loop indices are not reads of
    user storage and are excluded."""
    gars: list[GAR] = []

    def rec(node: Expr) -> None:
        if isinstance(node, NameRef):
            name = node.name
            if (
                name not in ctx.active_indices
                and name not in ctx.table.parameters
                and not ctx.table.is_array(name)
                and name != "*"
            ):
                gars.append(scalar_gar(name))
            return
        if isinstance(node, Apply):
            for arg in node.args:
                rec(arg)
            if node.is_array:
                gars.append(reference_gar(node, ctx))
            return
        for child in node.children():
            rec(child)

    rec(expr)
    return GARList(gars)


def collect_arrays_mentioned(expr: Expr, ctx: ConversionContext) -> set[str]:
    """Names of arrays referenced anywhere inside *expr*."""
    out: set[str] = set()
    for node in expr.walk():
        if isinstance(node, Apply) and node.is_array:
            out.add(node.name)
        elif isinstance(node, NameRef) and ctx.table.is_array(node.name):
            out.add(node.name)
    return out
