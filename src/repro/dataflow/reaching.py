"""Scalar reaching-definition chains over the HSG.

The paper builds its array dataflow "upon the interprocedural scalar
reaching-definition chains and the Hierarchical Supergraph" (section 6,
citing Li '93).  The summary algorithms in this package perform scalar
value propagation *on the fly* instead (substitution during backward
propagation), so reaching definitions are not on the analysis' critical
path — but they remain the right tool for diagnostics ("which definitions
can this use see?") and for clients that want classic def-use chains.

This module computes, per flow subgraph, the may-reaching definition sets
at every node entry (a forward union/kill analysis; one topological pass
suffices on the HSG's DAGs), with loop, call, and condensed nodes
contributing summary definition sites for every scalar they may write.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..fortran.ast_nodes import Apply, Assign, IoStmt, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    HSGNode,
    IfConditionNode,
    LoopNode,
)
from ..symbolic import SymExpr
from .convert import ConversionContext, to_symexpr


class DefKind(enum.Enum):
    """How a scalar definition site came to be."""

    ENTRY = "entry"  # value on entry to the segment (no definition seen)
    ASSIGN = "assign"
    LOOP_INDEX = "loop-index"
    LOOP_BODY = "loop-body"  # assigned somewhere inside a loop
    CALL = "call"
    READ = "read"  # Fortran READ statement
    CYCLE = "cycle"  # inside a condensed GOTO cycle


@dataclass(frozen=True)
class ScalarDef:
    """One definition site of a scalar variable."""

    name: str
    kind: DefKind
    #: the HSG node containing the definition (None for ENTRY)
    node_id: Optional[int]
    #: source line when known
    lineno: int = 0
    #: the defined symbolic value, when representable
    value: Optional[SymExpr] = None

    def __str__(self) -> str:
        where = f"node {self.node_id}" if self.node_id is not None else "entry"
        val = f" = {self.value}" if self.value is not None else ""
        return f"{self.name}@{where}[{self.kind.value}]{val}"


@dataclass
class ReachingDefinitions:
    """Reaching-definition sets at every node entry of one flow subgraph."""

    graph: FlowGraph
    #: node -> name -> definitions that may reach the node's entry
    at_entry: dict[HSGNode, dict[str, frozenset[ScalarDef]]] = field(
        default_factory=dict
    )

    def reaching(self, node: HSGNode, name: str) -> frozenset[ScalarDef]:
        """Definitions of *name* that may reach *node*'s entry.

        An empty result means the variable is certainly still at its
        segment-entry value there (reported as a single ENTRY def).
        """
        defs = self.at_entry.get(node, {}).get(name)
        if defs:
            return defs
        return frozenset({ScalarDef(name, DefKind.ENTRY, None)})

    def unique_value(self, node: HSGNode, name: str) -> Optional[SymExpr]:
        """The single symbolic value of *name* at *node*, if all reaching
        definitions agree on one; ``None`` otherwise."""
        defs = self.reaching(node, name)
        values = {d.value for d in defs}
        if len(values) == 1:
            (value,) = values
            return value
        return None


def _node_definitions(
    node: HSGNode, ctx: ConversionContext
) -> list[ScalarDef]:
    """Definition sites a node generates (kills are total per name)."""
    out: list[ScalarDef] = []
    if isinstance(node, BasicBlockNode):
        for stmt in node.stmts:
            if isinstance(stmt, Assign) and isinstance(stmt.target, NameRef):
                value = to_symexpr(stmt.value, ctx)
                out.append(
                    ScalarDef(
                        stmt.target.name,
                        DefKind.ASSIGN,
                        node.node_id,
                        stmt.lineno,
                        value,
                    )
                )
            elif isinstance(stmt, IoStmt) and stmt.kind == "read":
                for item in stmt.items:
                    if isinstance(item, NameRef) and not ctx.table.is_array(
                        item.name
                    ):
                        out.append(
                            ScalarDef(
                                item.name, DefKind.READ, node.node_id,
                                stmt.lineno,
                            )
                        )
    elif isinstance(node, LoopNode):
        out.append(
            ScalarDef(node.var, DefKind.LOOP_INDEX, node.node_id, node.lineno)
        )
        for name in sorted(_scalars_assigned_in(node.body, ctx)):
            out.append(
                ScalarDef(name, DefKind.LOOP_BODY, node.node_id, node.lineno)
            )
    elif isinstance(node, CallNode):
        for arg in node.call.args:
            if isinstance(arg, NameRef) and not ctx.table.is_array(arg.name):
                out.append(
                    ScalarDef(
                        arg.name, DefKind.CALL, node.node_id,
                        node.call.lineno,
                    )
                )
        for names in ctx.table.commons.values():
            for name in names:
                if not ctx.table.is_array(name):
                    out.append(
                        ScalarDef(name, DefKind.CALL, node.node_id)
                    )
    elif isinstance(node, CondensedNode):
        for member in node.members:
            for d in _node_definitions(member, ctx):
                out.append(
                    ScalarDef(d.name, DefKind.CYCLE, node.node_id, d.lineno)
                )
    return out


def _scalars_assigned_in(graph: FlowGraph, ctx: ConversionContext) -> set[str]:
    out: set[str] = set()
    for node in graph.nodes:
        for d in _node_definitions(node, ctx):
            out.add(d.name)
    return out


def compute_reaching(
    graph: FlowGraph, ctx: ConversionContext
) -> ReachingDefinitions:
    """One-pass forward reaching-definitions over a DAG flow subgraph.

    A basic block kills every earlier definition of the scalars it
    assigns unconditionally (the last definition in the block wins);
    loop/call/condensed nodes generate *may* definitions that merge with
    incoming ones only when the write is not guaranteed — conservatively,
    loop-body and call definitions do not kill (zero-trip loops, callee
    RETURN paths), while loop-index and plain assignments do.
    """
    result = ReachingDefinitions(graph)
    at_exit: dict[HSGNode, dict[str, frozenset[ScalarDef]]] = {}
    for node in graph.topological():
        merged: dict[str, set[ScalarDef]] = {}
        for pred, _ in graph.preds(node):
            for name, defs in at_exit.get(pred, {}).items():
                merged.setdefault(name, set()).update(defs)
        entry = {name: frozenset(defs) for name, defs in merged.items()}
        result.at_entry[node] = entry
        out: dict[str, frozenset[ScalarDef]] = dict(entry)
        for definition in _node_definitions(node, ctx):
            kills = definition.kind in (DefKind.ASSIGN, DefKind.READ,
                                        DefKind.LOOP_INDEX)
            if kills:
                out[definition.name] = frozenset({definition})
            else:
                out[definition.name] = out.get(
                    definition.name, frozenset()
                ) | {definition}
        at_exit[node] = out
    return result


def reaching_for_unit(analyzer, unit_name: str) -> ReachingDefinitions:
    """Reaching definitions of a routine's top-level flow subgraph."""
    return compute_reaching(
        analyzer.hsg.graph(unit_name), analyzer.context_for(unit_name)
    )
