"""``SUM_bb``: the basic-block transfer function (paper section 4.1).

The paper splits this into a block-local (MOD, UE) computation followed by
the propagation step's on-the-fly substitution of scalars defined within
the node.  We fuse the two: statements are walked in reverse over the sets
flowing up from below, which applies intra-block kills, exposes uses, and
performs scalar value substitution in one uniform pass.

Scalars are modeled as rank-1 regions (see :mod:`repro.dataflow.summary`),
so a scalar assignment both *kills/generates the scalar's storage cell*
and *substitutes the scalar's value* into every symbolic expression of the
sets so far.
"""

from __future__ import annotations

from ..fortran.ast_nodes import (
    Apply,
    Assign,
    Continue,
    Declaration,
    DimensionStmt,
    IoStmt,
    MiscDecl,
    NameRef,
    ParameterStmt,
    CommonStmt,
    Stmt,
)
from ..hsg.nodes import BasicBlockNode
from ..regions import GAR, GARList, RegularRegion
from ..regions.gar_ops import subtract_lists, union_lists
from ..symbolic import Predicate, SymExpr
from .convert import ConversionContext, to_symexpr
from .summary import Summary, collect_uses, reference_gar, scalar_gar


def transfer_basic_block(
    analyzer, node: BasicBlockNode, below: Summary, ctx: ConversionContext
) -> Summary:
    """Apply SUM_bb: statements in reverse over the below-sets."""
    mod, ue = below.mod, below.ue
    cmp = analyzer.comparer
    for stmt in reversed(node.stmts):
        mod, ue = transfer_statement(analyzer, stmt, mod, ue, ctx)
        analyzer.stats.note_list(mod)
        analyzer.stats.note_list(ue)
    return Summary(mod, ue)


def transfer_statement(
    analyzer, stmt: Stmt, mod: GARList, ue: GARList, ctx: ConversionContext
) -> tuple[GARList, GARList]:
    """One statement's (MOD, UE) transfer, backward."""
    cmp = analyzer.comparer
    if isinstance(stmt, Assign):
        target = stmt.target
        if isinstance(target, Apply) and target.is_array:
            gar = reference_gar(target, ctx)
            write = GARList.of(gar)
            ue = subtract_lists(ue, write, cmp)
            mod = union_lists(mod, write, cmp)
            uses = collect_uses(stmt.value, ctx)
            for sub in target.args:
                uses = uses.union(collect_uses(sub, ctx))
            ue = union_lists(ue, uses, cmp)
            return mod, ue
        # scalar assignment: v = rhs
        name = target.name if isinstance(target, NameRef) else target.name
        value = _scalar_value(stmt, name, ctx)
        bindings = {name: value}
        mod = mod.substitute(bindings)
        ue = ue.substitute(bindings)
        write = GARList.of(scalar_gar(name))
        ue = subtract_lists(ue, write, cmp)
        mod = union_lists(mod, write, cmp)
        ue = union_lists(ue, collect_uses(stmt.value, ctx), cmp)
        return mod, ue
    if isinstance(stmt, IoStmt):
        if stmt.kind == "read":
            # READ writes its items with values the analysis cannot see
            for item in stmt.items:
                if isinstance(item, Apply) and item.is_array:
                    gar = reference_gar(item, ctx).inexact()
                    mod = union_lists(mod, GARList.of(gar), cmp)
                    for sub in item.args:
                        ue = union_lists(ue, collect_uses(sub, ctx), cmp)
                elif isinstance(item, NameRef):
                    name = item.name
                    if ctx.table.is_array(name):
                        rank = ctx.table.arrays[name].rank
                        mod = union_lists(
                            mod, GARList.of(GAR.omega(name, rank)), cmp
                        )
                    else:
                        bindings = {name: ctx.fresh_opaque(name)}
                        mod = mod.substitute(bindings)
                        ue = ue.substitute(bindings)
                        write = GARList.of(scalar_gar(name))
                        ue = subtract_lists(ue, write, cmp)
                        mod = union_lists(mod, write, cmp)
            return mod, ue
        # WRITE / PRINT: pure uses
        for item in stmt.items:
            ue = union_lists(ue, collect_uses(item, ctx), cmp)
            if isinstance(item, NameRef) and ctx.table.is_array(item.name):
                rank = ctx.table.arrays[item.name].rank
                ue = union_lists(ue, GARList.of(GAR.omega(item.name, rank)), cmp)
        return mod, ue
    if isinstance(
        stmt, (Continue, MiscDecl, Declaration, DimensionStmt, ParameterStmt,
               CommonStmt)
    ):
        return mod, ue
    raise TypeError(f"basic block contains unexpected {type(stmt).__name__}")


def _scalar_value(stmt: Assign, name: str, ctx: ConversionContext) -> SymExpr:
    """The symbolic value assigned to scalar *name*, or a fresh opaque."""
    if ctx.table.is_logical(name):
        # logical values: representable only as a plain variable copy
        if isinstance(stmt.value, NameRef) and ctx.table.is_logical(
            stmt.value.name
        ):
            return SymExpr.var(stmt.value.name)
        return ctx.fresh_opaque(name)
    value = to_symexpr(stmt.value, ctx)
    if value is None:
        return ctx.fresh_opaque(name)
    return value
