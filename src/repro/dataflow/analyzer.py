"""The symbolic array dataflow analyzer: ties the SUM_* algorithms together.

:class:`SummaryAnalyzer` owns the HSG, the analysis options (the T1/T2/T3
toggles of Table 1), the comparer, and the caches:

* ``routine_summary(name)`` — the interprocedural (MOD, UE) of a whole
  routine in terms of its formals and COMMON names (computed once,
  bottom-up over the acyclic call graph);
* ``loop_summary(loop)`` — the full per-loop record (``MOD_i``, ``UE_i``,
  ``MOD_{<i}``, ``MOD_{>i}``, ``MOD``, ``UE``) used by the privatization
  and parallelization clients;
* ``condition_predicate(node)`` — the guard of an IF-condition node.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..fortran.ast_nodes import Expr
from ..hsg.builder import HSG
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import IfConditionNode, LoopNode
from ..symbolic import Comparer, Predicate
from .context import AnalysisOptions, AnalysisStats, LoopSummaryRecord
from .convert import ConversionContext, to_predicate
from .summary import Summary
from .sum_loop import summarize_loop
from .sum_segment import sum_segment

#: stable identity of one loop summary across processes: the routine, the
#: loop header (variable, source label, routine-relative line), and the
#: active enclosing indices — everything the record depends on besides
#: the source text
LoopKey = tuple[str, str, Optional[int], int, frozenset[str]]

#: seam for injecting externally cached routine summaries (engine cache)
SummaryProvider = Callable[[str], Optional[Summary]]
#: seam for injecting externally cached per-loop summary records
LoopRecordProvider = Callable[[LoopKey], Optional[LoopSummaryRecord]]


class SummaryAnalyzer:
    """Array dataflow summary computation over a built HSG."""

    def __init__(self, hsg: HSG, options: AnalysisOptions | None = None) -> None:
        self.hsg = hsg
        self.options = options or AnalysisOptions()
        self.comparer = self.options.comparer()
        self.stats = AnalysisStats()
        self._routine_cache: dict[str, Summary] = {}
        self._loop_cache: dict[tuple[int, frozenset[str]], LoopSummaryRecord] = {}
        self._cond_cache: dict[tuple[int, frozenset[str]], Predicate] = {}
        self._de_cache: dict[tuple[int, frozenset[str]], tuple] = {}
        self._routine_de_cache: dict[str, object] = {}
        self._in_progress: set[str] = set()
        #: external caches consulted before computing (None → always compute)
        self.summary_provider: Optional[SummaryProvider] = None
        self.loop_record_provider: Optional[LoopRecordProvider] = None
        #: content-domain facts (repro.contents.ContentFacts) installed by
        #: the frontier pass; per-unit derived index-array forms and guard
        #: bounds are merged into every conversion context.  Facts are a
        #: pure function of each unit's own source + options, so summary
        #: fingerprints stay valid (docs/frontier.md)
        self.content_facts = None
        #: routines/loops served by a provider rather than computed here
        self.provided_summaries: set[str] = set()
        self.provided_loop_records: set[LoopKey] = set()

    # -- contexts ------------------------------------------------------------------

    def context_for(self, unit_name: str) -> ConversionContext:
        """A fresh conversion context for one routine."""
        forms = dict(self.options.index_array_forms)
        bounds = {}
        if self.content_facts is not None:
            # hand-supplied forms take precedence over derived ones
            for name, form in self.content_facts.forms_for(unit_name).items():
                forms.setdefault(name, form)
            bounds = self.content_facts.bounds_for(unit_name)
        return ConversionContext(
            table=self.hsg.analyzed.table(unit_name),
            symbolic=self.options.symbolic,
            if_conditions=self.options.if_conditions,
            index_array_forms=forms,
            content_bounds=bounds,
        )

    # -- cached computations ----------------------------------------------------------

    def routine_summary(self, unit_name: str) -> Summary:
        """(MOD, UE) of a whole routine, in terms of formals and COMMONs."""
        cached = self._routine_cache.get(unit_name)
        if cached is not None:
            return cached
        if self.summary_provider is not None:
            provided = self.summary_provider(unit_name)
            if provided is not None:
                self._routine_cache[unit_name] = provided
                self.provided_summaries.add(unit_name)
                return provided
        if unit_name in self._in_progress:  # guarded by callgraph check too
            from ..errors import CallGraphError

            raise CallGraphError(f"recursive summary request for {unit_name}")
        self._in_progress.add(unit_name)
        try:
            graph = self.hsg.graph(unit_name)
            summary = self.sum_segment(graph, self.context_for(unit_name))
        finally:
            self._in_progress.discard(unit_name)
        self._routine_cache[unit_name] = summary
        self.stats.routines_summarized += 1
        return summary

    def loop_summary(
        self, loop: LoopNode, ctx: ConversionContext
    ) -> LoopSummaryRecord:
        """The cached LoopSummaryRecord of a loop in context."""
        key = (loop.node_id, ctx.active_indices)
        cached = self._loop_cache.get(key)
        if cached is None and self.loop_record_provider is not None:
            stable = self.loop_key(ctx.table.unit.name, loop, ctx.active_indices)
            cached = self.loop_record_provider(stable)
            if cached is not None:
                self.provided_loop_records.add(stable)
                self._loop_cache[key] = cached
        if cached is None:
            cached = summarize_loop(self, loop, ctx)
            self._loop_cache[key] = cached
        return cached

    def loop_de(self, loop: LoopNode, ctx: ConversionContext):
        """Whole-loop downward-exposed use set (section 3.2.2 footnote)."""
        return self.loop_de_sets(loop, ctx)[1]

    def loop_de_sets(self, loop: LoopNode, ctx: ConversionContext):
        """``(DE_i, DE)`` of a loop, cached like the MOD/UE summaries."""
        from .downward import loop_de_sets

        key = (loop.node_id, ctx.active_indices)
        cached = self._de_cache.get(key)
        if cached is None:
            cached = loop_de_sets(self, loop, ctx)
            self._de_cache[key] = cached
        return cached

    def routine_de(self, unit_name: str):
        """Downward-exposed use set of a whole routine."""
        from .downward import downward_segment

        cached = self._routine_de_cache.get(unit_name)
        if cached is None:
            graph = self.hsg.graph(unit_name)
            cached = downward_segment(self, graph, self.context_for(unit_name))
            self._routine_de_cache[unit_name] = cached
        return cached

    def condition_predicate(
        self, node: IfConditionNode, ctx: ConversionContext
    ) -> Predicate:
        """The (cached) guard of an IF-condition node."""
        key = (node.node_id, ctx.active_indices)
        cached = self._cond_cache.get(key)
        if cached is None:
            cached = to_predicate(node.cond, ctx)
            self._cond_cache[key] = cached
        return cached

    # -- propagation -----------------------------------------------------------------------

    def sum_segment(
        self,
        graph: FlowGraph,
        ctx: ConversionContext,
        record_below=None,
    ) -> Summary:
        """Backward (MOD, UE) propagation over a subgraph."""
        return sum_segment(self, graph, ctx, record_below)

    def below_summary(self, unit_name: str, loop: LoopNode) -> Summary:
        """What the program still reads/writes after *loop* completes,
        within its containing flow subgraph (for copy-out analysis)."""
        graph = self._containing_graph(unit_name, loop)
        ctx = self.context_for(unit_name)
        for idx in self.enclosing_indices(unit_name, loop):
            ctx = ctx.with_index(idx)
        record: dict = {}
        self.sum_segment(graph, ctx, record_below=record)
        return record.get(loop, Summary.empty())

    def _containing_graph(self, unit_name: str, loop: LoopNode) -> FlowGraph:
        def rec(graph: FlowGraph) -> Optional[FlowGraph]:
            for node in graph.nodes:
                if node is loop:
                    return graph
                if isinstance(node, LoopNode):
                    found = rec(node.body)
                    if found is not None:
                        return found
            return None

        found = rec(self.hsg.graph(unit_name))
        if found is None:
            raise KeyError(f"loop {loop.describe()} not in {unit_name}")
        return found

    # -- loop lookup helpers -----------------------------------------------------------------

    def loop_record(
        self, unit_name: str, loop: LoopNode
    ) -> LoopSummaryRecord:
        """Loop summary with the enclosing-context indices reconstructed."""
        ctx = self.context_for(unit_name)
        for enclosing in self.enclosing_indices(unit_name, loop):
            ctx = ctx.with_index(enclosing)
        return self.loop_summary(loop, ctx)

    def enclosing_indices(self, unit_name: str, loop: LoopNode) -> list[str]:
        """Index variables of loops enclosing *loop* in its routine,
        outermost first — the indices a conversion context must activate
        before summarizing the loop."""
        out: list[str] = []

        def rec(graph: FlowGraph, stack: list[str]) -> Optional[list[str]]:
            for node in graph.nodes:
                if node is loop:
                    return stack
                if isinstance(node, LoopNode):
                    found = rec(node.body, stack + [node.var])
                    if found is not None:
                        return found
            return None

        found = rec(self.hsg.graph(unit_name), [])
        return found if found is not None else out

    # -- cache interchange (the engine's summary-provider seam) -----------------------

    def loop_key(
        self, unit_name: str, loop: LoopNode, active: frozenset[str]
    ) -> LoopKey:
        """Process-stable identity of one loop summary (unlike
        ``node_id``, which depends on construction order).

        The line position is *routine-relative*: a routine embedded at
        any file offset keys its loops identically, so records computed
        for a standalone library item serve callers that concatenate
        the same routine after a driver.
        """
        unit = self.hsg.analyzed.program.unit(unit_name)
        return (
            unit_name,
            loop.var,
            loop.source_label,
            loop.lineno - unit.lineno,
            active,
        )

    def export_routine_summaries(self) -> dict[str, Summary]:
        """Snapshot of every routine summary computed (or provided) so far."""
        return dict(self._routine_cache)

    def export_loop_records(self) -> dict[LoopKey, LoopSummaryRecord]:
        """Stable-keyed snapshot of every loop summary computed so far."""
        by_id: dict[int, tuple[str, LoopNode]] = {}
        for unit in self.hsg.analyzed.program.units:

            def rec(graph: FlowGraph, unit_name: str) -> None:
                for node in graph.nodes:
                    if isinstance(node, LoopNode):
                        by_id[node.node_id] = (unit_name, node)
                        rec(node.body, unit_name)

            rec(self.hsg.graph(unit.name), unit.name)
        out: dict[LoopKey, LoopSummaryRecord] = {}
        for (node_id, active), record in self._loop_cache.items():
            located = by_id.get(node_id)
            if located is None:
                continue
            unit_name, loop = located
            out[self.loop_key(unit_name, loop, active)] = record
        return out


def analyze_program_summaries(
    hsg: HSG, options: AnalysisOptions | None = None
) -> dict[str, Summary]:
    """Summaries for every routine, computed bottom-up (convenience)."""
    analyzer = SummaryAnalyzer(hsg, options)
    out: dict[str, Summary] = {}
    for name in hsg.call_graph.order:
        out[name] = analyzer.routine_summary(name)
    return out
