"""Analysis options, per-loop summary records, and statistics.

The three option toggles correspond to the technique columns of the
paper's Table 1:

* ``symbolic`` (T1) — symbolic expression analysis.  Off: only integer
  constants and enclosing loop indices are understood; all symbolic
  comparisons fail.
* ``if_conditions`` (T2) — IF condition analysis.  Off: branch
  contributions are merged under the unknown guard Δ (the traditional
  "conservative merge" of flow-sensitive analyses that ignore condition
  contents).
* ``interprocedural`` (T3) — interprocedural propagation through the HSG.
  Off: every CALL is opaque (arrays passed or in COMMON are Ω).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from typing import Optional, Tuple

from ..regions import GARList
from ..resilience.budget import AnalysisBudget
from ..symbolic import Comparer, SymExpr


def _default_frontier() -> bool:
    """Frontier pass default: on, unless PANORAMA_NO_FRONTIER is set."""
    return os.environ.get("PANORAMA_NO_FRONTIER", "") in ("", "0")


@dataclass(frozen=True)
class AnalysisOptions:
    symbolic: bool = True  # T1
    if_conditions: bool = True  # T2
    interprocedural: bool = True  # T3
    #: use the Fourier-Motzkin fallback prover (stronger simplifier)
    use_fm: bool = True
    #: frontier pass: array-content domain + recurrence/scan recognizer
    #: (docs/frontier.md); off reproduces pre-frontier verdicts exactly
    frontier: bool = field(default_factory=_default_frontier)
    #: closed forms for subscript arrays (paper section 6): pairs of
    #: (array name, expression over convert.subscript_placeholder)
    index_array_forms: Tuple[Tuple[str, SymExpr], ...] = ()
    #: analysis budget: wall-clock deadline per compile (None = unlimited)
    budget_ms: Optional[float] = None
    #: analysis budget: abstract symbolic-kernel steps (None = unlimited)
    budget_steps: Optional[int] = None

    def comparer(self) -> Comparer:
        """A comparer configured per the option toggles."""
        return Comparer(use_fm=self.use_fm, symbolic=self.symbolic)

    def budget(self) -> Optional[AnalysisBudget]:
        """A fresh budget per the limits, or None when unlimited."""
        if self.budget_ms is None and self.budget_steps is None:
            return None
        return AnalysisBudget(
            budget_ms=self.budget_ms, max_steps=self.budget_steps
        )

    @classmethod
    def all_on(cls) -> "AnalysisOptions":
        return cls()

    @classmethod
    def ablation(cls, disable: str) -> "AnalysisOptions":
        """Options with one technique disabled: 'T1' | 'T2' | 'T3'."""
        key = {"T1": "symbolic", "T2": "if_conditions", "T3": "interprocedural"}[
            disable
        ]
        return cls(**{key: False})  # type: ignore[arg-type]


@dataclass
class LoopSummaryRecord:
    """Everything the clients need about one DO loop (section 3/4 sets)."""

    routine: str
    var: str
    lo: SymExpr
    hi: SymExpr
    step: SymExpr
    #: per-iteration sets (in terms of the free index variable)
    mod_i: GARList = field(default_factory=GARList)
    ue_i: GARList = field(default_factory=GARList)
    #: prior/later iteration mods (free index = the current iteration)
    mod_lt: GARList = field(default_factory=GARList)
    mod_gt: GARList = field(default_factory=GARList)
    #: whole-loop sets (index eliminated)
    mod: GARList = field(default_factory=GARList)
    ue: GARList = field(default_factory=GARList)
    #: conservative flags
    has_premature_exit: bool = False
    negative_step: bool = False
    #: non-None when this record is a budget-exhaustion fallback: the
    #: reason string ("budget", "deadline", "steps") — the sets are the
    #: conservative declared-bounds over-approximation, not real analysis
    degraded: Optional[str] = None

    def __str__(self) -> str:
        return (
            f"loop {self.var}={self.lo},{self.hi},{self.step} in {self.routine}:\n"
            f"  MOD_i  = {self.mod_i}\n"
            f"  UE_i   = {self.ue_i}\n"
            f"  MOD_<i = {self.mod_lt}\n"
            f"  MOD_>i = {self.mod_gt}\n"
            f"  MOD    = {self.mod}\n"
            f"  UE     = {self.ue}"
        )


@dataclass
class AnalysisStats:
    """Instrumentation used by the Figure-4 style cost reporting."""

    nodes_visited: int = 0
    gar_ops: int = 0
    loops_summarized: int = 0
    routines_summarized: int = 0
    peak_gar_list: int = 0
    #: budget-exhaustion fallbacks taken (loops/calls degraded to the
    #: conservative whole-array summary)
    budget_degradations: int = 0
    #: frontier pass (docs/frontier.md): content-domain facts inferred,
    #: recurrence/scan matches recognized, and loops whose verdict is
    #: backed by frontier evidence records
    content_facts: int = 0
    recurrence_matches: int = 0
    frontier_upgrades: int = 0
    #: symbolic-kernel counter/cache deltas attributed to this compile
    #: (flat ``repro.perf`` snapshot keys → numbers); filled by the
    #: pipeline driver so ``panorama --json`` can expose them
    symbolic: dict = field(default_factory=dict)

    def note_list(self, gars: GARList) -> None:
        """Record a GAR-list size for the peak statistic."""
        if len(gars) > self.peak_gar_list:
            self.peak_gar_list = len(gars)
