"""The static soundness auditor (docs/auditing.md).

An N-version cross-check of every parallel verdict: the conventional
dependence suite re-examines the reference pairs the GAR analysis must
have disproved, and disagreements surface as PAN1xx diagnostics.
"""

from .auditor import (
    AuditFinding,
    AuditReport,
    audit_compilation,
    audit_loop,
    classify_votes,
)
from .lint import lint_program

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_compilation",
    "audit_loop",
    "classify_votes",
    "lint_program",
]
