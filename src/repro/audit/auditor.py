"""The static race auditor: an N-version check of parallel verdicts.

For every loop the pipeline reports PARALLEL (in any flavor), the
auditor independently re-derives the cross-iteration conflicts the GAR
path must have disproved: all (write, write) and (write, read) reference
pairs over variables that were *not* removed by privatization, reduction
rewriting, or induction recognition.  Each pair is put to the whole
conventional dependence suite — the GCD test, the Banerjee bounds test,
and a symbolic distance prover built on the Comparer — as independent
voters:

* any voter proving **independence** clears the pair;
* the distance prover proving a **dependence** while the loop is claimed
  parallel is a confirmed disagreement (``PAN101``), *unless* the loop
  body contains control flow the conventional tests cannot see (IF
  branches, condensed GOTO cycles) — then the dependence is memory-level
  only and the finding downgrades to ``PAN103`` (the GAR analysis may
  legitimately have used the guards to kill it);
* contradictory proofs among the voters are an internal bug (``PAN302``);
* a pair nobody can decide is recorded as ``PAN102`` so silent
  conservatism stays visible.

Soundness of the auditor itself: the conventional tests assume
loop-invariant symbolic terms, so any pair whose subscripts mention a
scalar written inside the loop is voted *unknown* outright (the value
may differ between the two iterations being compared); dependence proofs
additionally require a unit loop step, a consistent integer distance
across every subscript dimension, and — for dimensions aligned on inner
loop indices — provably non-empty inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..dataflow.analyzer import SummaryAnalyzer
from ..dataflow.convert import ConversionContext, to_symexpr
from ..deptest.banerjee import LoopBounds, banerjee_test_many
from ..deptest.ddg import _numeric_bounds, _scalar_writes
from ..deptest.gcd import gcd_test_many
from ..deptest.subscript import ArrayReference, collect_references
from ..diagnostics import Diagnostic, diagnostic_to_dict, resolve_span
from ..driver.panorama import CompilationResult, LoopReport
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import CondensedNode, IfConditionNode, LoopNode
from ..regions import sanitize
from ..symbolic import Comparer, Predicate, SymExpr

#: vote values
INDEPENDENT = "independent"
DEPENDENT = "dependent"
POSSIBLE = "possible"
UNKNOWN = "unknown"

#: finding kinds → diagnostic codes
KIND_CODES = {
    "confirmed": "PAN101",
    "undecided": "PAN102",
    "guarded": "PAN103",
    "skipped": "PAN104",
    "evidence-replay": "PAN105",
    "oracle-conflict": "PAN302",
    "evidence-unsupported": "PAN305",
}


@dataclass
class AuditFinding:
    """One audited pair (or loop) that produced a diagnostic."""

    kind: str  # 'confirmed' | 'undecided' | 'guarded' | 'skipped' | 'oracle-conflict'
    loop: str  # display id, e.g. "interf/1000"
    routine: str
    lineno: int
    variable: str
    detail: str
    src: str = ""
    dst: str = ""
    votes: dict[str, str] = field(default_factory=dict)

    def message(self) -> str:
        head = {
            "confirmed": (
                f"loop {self.loop} is reported parallel but carries a "
                f"provable cross-iteration dependence on {self.variable}"
            ),
            "guarded": (
                f"loop {self.loop}: memory-level carried dependence on "
                f"{self.variable} under control guards"
            ),
            "undecided": (
                f"loop {self.loop}: no dependence test decides the pair "
                f"on {self.variable}"
            ),
            "skipped": f"loop {self.loop} skipped by the audit",
            "evidence-replay": (
                f"loop {self.loop}: frontier evidence on {self.variable} "
                f"does not replay from the source"
            ),
            "oracle-conflict": (
                f"loop {self.loop}: dependence tests contradict each other "
                f"on {self.variable}"
            ),
            "evidence-unsupported": (
                f"loop {self.loop}: evidence record on {self.variable} has "
                f"a kind the auditor cannot replay"
            ),
        }[self.kind]
        parts = [head]
        if self.src or self.dst:
            parts.append(f"pair {self.src} vs {self.dst}")
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts)

    def to_diagnostic(self, file: str, source: Optional[str]) -> Diagnostic:
        return Diagnostic(
            code=KIND_CODES[self.kind],
            message=self.message(),
            span=resolve_span(file, self.lineno, source),
            data={
                "loop": self.loop,
                "variable": self.variable,
                "votes": dict(self.votes),
            },
        )


@dataclass
class AuditReport:
    """Everything one audit pass over a compilation produced."""

    name: str
    findings: list[AuditFinding] = field(default_factory=list)
    lint: list[Diagnostic] = field(default_factory=list)
    sanitizer: list[Diagnostic] = field(default_factory=list)
    loops_audited: int = 0
    pairs_checked: int = 0
    #: the Fortran source text, for snippet resolution (optional)
    source: Optional[str] = None

    def confirmed(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.kind == "confirmed"]

    def undecided(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.kind == "undecided"]

    def diagnostics(self, source: Optional[str] = None) -> list[Diagnostic]:
        """All findings plus lint and sanitizer output, as diagnostics."""
        source = source if source is not None else self.source
        out = [f.to_diagnostic(self.name, source) for f in self.findings]
        out.extend(self.lint)
        out.extend(self.sanitizer)
        return out

    def errors(self) -> list[Diagnostic]:
        """Error-severity diagnostics (what --strict-audit fails on)."""
        from ..diagnostics import Severity

        return [d for d in self.diagnostics() if d.level is Severity.ERROR]

    def clean(self) -> bool:
        """No confirmed disagreements and no internal violations?"""
        return not self.errors()

    def counts(self) -> dict[str, int]:
        """Flat counters for telemetry roll-ups."""
        by_kind = {k: 0 for k in KIND_CODES}
        for f in self.findings:
            by_kind[f.kind] += 1
        return {
            "loops_audited": self.loops_audited,
            "pairs_checked": self.pairs_checked,
            "confirmed": by_kind["confirmed"],
            "guarded": by_kind["guarded"],
            "undecided": by_kind["undecided"],
            "skipped": by_kind["skipped"],
            "evidence_replay": by_kind["evidence-replay"],
            "evidence_unsupported": by_kind["evidence-unsupported"],
            "oracle_conflicts": by_kind["oracle-conflict"],
            "lint": len(self.lint),
            "sanitizer": len(self.sanitizer),
        }

    def to_payload(self, source: Optional[str] = None) -> dict[str, Any]:
        """JSON-ready form (ships across the batch worker boundary)."""
        return {
            "counts": self.counts(),
            "clean": self.clean(),
            "diagnostics": [
                diagnostic_to_dict(d) for d in self.diagnostics(source)
            ],
        }

    def summary_line(self) -> str:
        c = self.counts()
        return (
            f"audit: {c['loops_audited']} loop(s), {c['pairs_checked']} "
            f"pair(s): {c['confirmed']} confirmed, {c['guarded']} guarded, "
            f"{c['undecided']} undecided; {c['lint']} lint finding(s)"
        )


# --------------------------------------------------------------------------- #
# control-flow and nesting helpers
# --------------------------------------------------------------------------- #


def _has_control(graph: FlowGraph) -> bool:
    """Does the subgraph (any depth) contain guards the tests cannot see?"""
    for node in graph.nodes:
        if isinstance(node, (IfConditionNode, CondensedNode)):
            return True
        if isinstance(node, LoopNode) and _has_control(node.body):
            return True
    return False


def _inner_loops(loop: LoopNode) -> dict[str, LoopNode]:
    """Loop nodes nested inside *loop*, keyed by index variable."""
    out: dict[str, LoopNode] = {}

    def scan(graph: FlowGraph) -> None:
        for node in graph.nodes:
            if isinstance(node, LoopNode):
                out.setdefault(node.var, node)
                scan(node.body)

    scan(loop.body)
    return out


# --------------------------------------------------------------------------- #
# the distance prover (the voter that can prove *dependence*)
# --------------------------------------------------------------------------- #


def _distance_proof(
    a: ArrayReference,
    b: ArrayReference,
    loop: LoopNode,
    ctx: ConversionContext,
    cmp: Comparer,
    inner: dict[str, LoopNode],
) -> tuple[Optional[bool], str]:
    """Whole-reference cross-iteration proof for the audited loop.

    Returns ``(True, why)`` when a carried dependence provably exists,
    ``(False, why)`` when the pair is provably independent across
    iterations, ``(None, why)`` otherwise.  A dependence proof needs a
    single consistent integer distance pinning *every* dimension (plus
    non-empty inner loops for dimensions aligned on inner indices); a
    refutation needs only one dimension that can never align.
    """
    if len(a.subscripts) != len(b.subscripts):
        return None, "rank mismatch"
    index = loop.var
    lo = to_symexpr(loop.start, ctx)
    hi = to_symexpr(loop.stop, ctx)
    step = (
        to_symexpr(loop.step, ctx) if loop.step is not None else SymExpr.const(1)
    )
    step_val = step.constant_value() if step is not None else None
    unit_step = step_val == 1
    distance: Optional[int] = None
    needs_inner: set[str] = set()
    inner_set = set(inner)

    for s, d in zip(a.subscripts, b.subscripts):
        if s is None or d is None:
            return None, "unanalyzable subscript"
        if not (s.is_linear_in(index) and d.is_linear_in(index)):
            return None, f"non-linear use of {index}"
        ca = s.coeff_of_var(index)
        cb = d.coeff_of_var(index)
        s_rest = s - SymExpr.var(index).scaled(ca)
        d_rest = d - SymExpr.var(index).scaled(cb)
        if ca != cb:
            return None, f"weak-SIV dimension ({ca}*{index} vs {cb}*{index})"
        if ca == 0:
            # dimension invariant in the audited index
            if s == d:
                needs_inner |= (s.free_vars() & inner_set)
                continue
            delta = (s_rest - d_rest).constant_value()
            if delta is not None and delta != 0:
                return False, "loop-invariant dimension never aligns"
            if cmp.eq(s_rest, d_rest) is True:
                needs_inner |= (s.free_vars() | d.free_vars()) & inner_set
                continue
            if cmp.ne(s_rest, d_rest) is True:
                return False, "loop-invariant dimension provably distinct"
            return None, "loop-invariant dimension not provably aligned"
        # strong SIV: ca*i + s_rest == ca*i' + d_rest  ⇒  i - i' = Δ/ca
        dv = (d_rest - s_rest).constant_value()
        if dv is None:
            if cmp.eq(s_rest, d_rest) is True:
                dv = 0
            else:
                return None, "symbolic distance"
        frac = dv / ca
        if frac.denominator != 1:
            return False, "non-integer distance: dimensions never align"
        dk = frac.numerator
        if distance is None:
            distance = dk
        elif distance != dk:
            return False, "inconsistent distances across dimensions"
        needs_inner |= (s_rest.free_vars() | d_rest.free_vars()) & inner_set

    def inner_nonempty() -> Optional[bool]:
        for var in sorted(needs_inner):
            node = inner[var]
            ilo = to_symexpr(node.start, ctx)
            ihi = to_symexpr(node.stop, ctx)
            if ilo is None or ihi is None:
                return None
            istep = (
                to_symexpr(node.step, ctx)
                if node.step is not None
                else SymExpr.const(1)
            )
            if istep is None or istep.constant_value() != 1:
                return None
            if cmp.le(ilo, ihi) is not True:
                return None
        return True

    if distance is None:
        # every dimension aligns independently of the audited index: the
        # same elements are touched by *any* two iterations — dependent
        # as soon as a second iteration provably exists
        if not unit_step:
            return None, "non-unit loop step"
        if lo is None or hi is None:
            return None, "unknown loop bounds"
        if cmp.le(lo + SymExpr.const(1), hi) is not True:
            return None, "second iteration not provable"
        if inner_nonempty() is not True:
            return None, "inner-loop alignment not provable"
        return True, "loop-invariant access repeated every iteration"
    if distance == 0:
        return False, "all dimensions align in the same iteration only"
    if not unit_step:
        return None, "non-unit loop step"
    if lo is None or hi is None:
        return None, "unknown loop bounds"
    span = hi - lo
    within = cmp.le(SymExpr.const(abs(distance)), span)
    if within is False:
        return False, f"distance {distance} exceeds the iteration span"
    if within is not True:
        return None, f"distance {distance} vs unknown span"
    if inner_nonempty() is not True:
        return None, "inner-loop alignment not provable"
    return True, f"carried dependence at distance {distance}"


# --------------------------------------------------------------------------- #
# vote synthesis
# --------------------------------------------------------------------------- #


def classify_votes(votes: dict[str, str]) -> tuple[str, str]:
    """Combine per-test votes into (pair kind, detail).

    Kind is ``'independent'`` (clean), ``'dependent'``, ``'undecided'``,
    or ``'oracle-conflict'`` when proofs contradict.
    """
    provers_ind = [t for t, v in votes.items() if v == INDEPENDENT]
    provers_dep = [t for t, v in votes.items() if v == DEPENDENT]
    if provers_ind and provers_dep:
        return (
            "oracle-conflict",
            f"{'/'.join(provers_dep)} prove dependence but "
            f"{'/'.join(provers_ind)} prove independence",
        )
    if provers_dep:
        return "dependent", f"proved by {'/'.join(provers_dep)}"
    if provers_ind:
        return "independent", f"proved by {'/'.join(provers_ind)}"
    return "undecided", "no test reached a proof"


def _fmt_vote(value: Optional[bool]) -> str:
    if value is False:
        return INDEPENDENT
    if value is True:
        return POSSIBLE
    return UNKNOWN


# --------------------------------------------------------------------------- #
# per-loop audit
# --------------------------------------------------------------------------- #


def _excluded_variables(report: LoopReport) -> set[str]:
    """Variables the transformation story already removes from the race."""
    verdict = report.verdict
    if verdict is None:
        return set()
    return (
        set(verdict.privatized)
        | set(verdict.reductions)
        | set(verdict.inductions)
        # scan variables: the carried flow dependence is real but the
        # two-pass schedule honors it; its *evidence* is replayed
        # separately (PAN105) instead of being re-proved here
        | set(verdict.scans)
    )


def audit_loop(
    analyzer: SummaryAnalyzer,
    unit_name: str,
    loop: LoopNode,
    report: LoopReport,
) -> tuple[list[AuditFinding], int]:
    """Audit one parallel-reported loop; returns (findings, pairs checked)."""
    ctx = analyzer.context_for(unit_name)
    for idx in analyzer.enclosing_indices(unit_name, loop):
        ctx = ctx.with_index(idx)
    lo = to_symexpr(loop.start, ctx)
    hi = to_symexpr(loop.stop, ctx)
    cmp = analyzer.comparer
    if lo is not None and hi is not None:
        # iteration-range context sharpens inner-bound proofs
        iv = SymExpr.var(loop.var)
        cmp = cmp.refine(Predicate.le(lo, iv) & Predicate.le(iv, hi))

    excluded = _excluded_variables(report)
    refs = collect_references(loop, ctx)
    bounds: dict[str, LoopBounds] = _numeric_bounds(loop, ctx)
    inner = _inner_loops(loop)
    written_scalars = _scalar_writes(loop, ctx) - set(inner) - {loop.var}
    guarded = _has_control(loop.body)
    loop_id = report.loop_id()

    findings: list[AuditFinding] = []
    pairs: list[tuple[ArrayReference, ArrayReference]] = []
    seen: set[tuple] = set()
    candidates = [r for r in refs if r.array not in excluded]
    for i, x in enumerate(candidates):
        for y in candidates[i:]:
            if x.array != y.array or not (x.is_write or y.is_write):
                continue
            key = tuple(sorted((str(x), str(y))))
            if key in seen:
                continue
            seen.add(key)
            pairs.append((x, y))

    def note(kind: str, variable: str, detail: str, src="", dst="", votes=None):
        findings.append(
            AuditFinding(
                kind=kind,
                loop=loop_id,
                routine=unit_name,
                lineno=loop.lineno,
                variable=variable,
                detail=detail,
                src=src,
                dst=dst,
                votes=dict(votes or {}),
            )
        )

    indices = {loop.var} | set(inner)
    # batched numeric votes: one constraint-core submission per distinct
    # nest covers every pair up front
    by_nest: dict[tuple[str, ...], list[int]] = {}
    for k, (x, y) in enumerate(pairs):
        by_nest.setdefault(tuple(dict.fromkeys(x.nest + y.nest)), []).append(k)
    gcd_votes: list = [None] * len(pairs)
    banerjee_votes: list = [None] * len(pairs)
    for nest, ks in by_nest.items():
        batch = [(pairs[k][0].subscripts, pairs[k][1].subscripts) for k in ks]
        for k, v in zip(ks, gcd_test_many(batch, nest)):
            gcd_votes[k] = v
        for k, v in zip(ks, banerjee_test_many(batch, nest, bounds)):
            banerjee_votes[k] = v
    for pair_no, (x, y) in enumerate(pairs):
        votes: dict[str, str] = {}
        free: set[str] = set()
        for s in x.subscripts + y.subscripts:
            if s is not None:
                free |= s.free_vars()
        varying = free & written_scalars
        if varying:
            # conventional tests assume loop-invariant symbols; a scalar
            # written in the body may differ between the iterations being
            # compared, so no vote below would be trustworthy
            note(
                "undecided",
                x.array,
                f"subscripts use iteration-varying scalar(s) "
                f"{', '.join(sorted(varying))}",
                str(x),
                str(y),
                {"all": UNKNOWN},
            )
            continue
        votes["gcd"] = _fmt_vote(gcd_votes[pair_no])
        votes["banerjee"] = _fmt_vote(banerjee_votes[pair_no])
        proof, why = _distance_proof(x, y, loop, ctx, cmp, inner)
        if proof is True:
            votes["distance"] = DEPENDENT
        elif proof is False:
            votes["distance"] = INDEPENDENT
        else:
            votes["distance"] = UNKNOWN
        kind, detail = classify_votes(votes)
        detail = f"{detail}; distance prover: {why}"
        if kind == "independent":
            continue
        if kind == "dependent":
            kind = "guarded" if guarded else "confirmed"
        note(kind, x.array, detail, str(x), str(y), votes)

    # scalars written in a parallel loop that nothing privatized: every
    # iteration hits the same cell — an output race as soon as a second
    # iteration exists
    for name in sorted(written_scalars - excluded - indices):
        detail = "scalar written every iteration without privatization"
        kind = "undecided"
        if (
            lo is not None
            and hi is not None
            and cmp.le(lo + SymExpr.const(1), hi) is True
        ):
            kind = "guarded" if guarded else "confirmed"
            detail += "; a second iteration provably exists"
        note(kind, name, detail, votes={"scalar-output": DEPENDENT})

    return findings, len(pairs)


# --------------------------------------------------------------------------- #
# frontier evidence replay
# --------------------------------------------------------------------------- #


def _replay_evidence(
    result: CompilationResult,
    loop_report: LoopReport,
    node: LoopNode,
    fact_cache: dict[str, list],
) -> list[AuditFinding]:
    """Independently re-derive every evidence record behind a verdict.

    Content facts are re-inferred from the unit source, recurrence
    decompositions re-recognized from the loop body; a record nothing
    re-derives is ``PAN105`` (evidence-replay), a record of unknown kind
    ``PAN305`` (evidence-unsupported).  A scan verdict carrying no
    recurrence record at all is also ``PAN105`` — the schedule has
    nothing to stand on.
    """
    from ..parallelize.classifier import LoopStatus
    from ..parallelize.recurrences import find_recurrences

    findings: list[AuditFinding] = []
    loop_id = loop_report.loop_id()

    def note(kind: str, variable: str, detail: str) -> None:
        findings.append(
            AuditFinding(
                kind=kind,
                loop=loop_id,
                routine=loop_report.routine,
                lineno=loop_report.lineno,
                variable=variable,
                detail=detail,
            )
        )

    matches = None  # lazy: only recognized when a record needs it
    for payload in loop_report.evidence:
        kind = payload.get("kind")
        if kind == "content":
            unit = payload.get("unit", loop_report.routine)
            if unit not in fact_cache:
                from ..contents import infer_unit

                fact_cache[unit] = infer_unit(
                    result.analyzed, unit, result.analyzer.options
                )
            if not any(
                f.matches_payload(payload) for f in fact_cache[unit]
            ):
                note(
                    "evidence-replay",
                    payload.get("array", "?"),
                    f"content fact {payload.get('fact')} on "
                    f"{payload.get('array')} not re-derivable from {unit}",
                )
        elif kind == "recurrence":
            if matches is None:
                matches = find_recurrences(node)
            if not any(m.matches_payload(payload) for m in matches):
                note(
                    "evidence-replay",
                    payload.get("variable", "?"),
                    f"recurrence {payload.get('shape')} on "
                    f"{payload.get('variable')} not re-recognizable",
                )
        else:
            note(
                "evidence-unsupported",
                str(payload.get("variable") or payload.get("array") or "?"),
                f"unknown evidence kind {kind!r}",
            )

    if loop_report.status is LoopStatus.PARALLEL_SCAN and not any(
        p.get("kind") == "recurrence" for p in loop_report.evidence
    ):
        note(
            "evidence-replay",
            loop_report.var,
            "scan verdict carries no recurrence evidence",
        )
    return findings


# --------------------------------------------------------------------------- #
# whole-compilation audit
# --------------------------------------------------------------------------- #


def audit_compilation(
    result: CompilationResult,
    name: str,
    run_lint: bool = True,
    source: Optional[str] = None,
) -> AuditReport:
    """Audit every parallel-reported loop of one compilation result."""
    report = AuditReport(name=name, source=source)
    fact_cache: dict[str, list] = {}
    loops = list(result.hsg.all_loops())
    # the pipeline appends reports in hsg.all_loops() order; pair them up
    # defensively by identity fields rather than trusting the zip blindly
    by_key: dict[tuple[str, str, Optional[int], int], LoopNode] = {}
    for unit_name, loop in loops:
        by_key[(unit_name, loop.var, loop.source_label, loop.lineno)] = loop

    for loop_report in result.loops:
        node = by_key.get(
            (
                loop_report.routine,
                loop_report.var,
                loop_report.source_label,
                loop_report.lineno,
            )
        )
        if loop_report.degraded is not None:
            report.findings.append(
                AuditFinding(
                    kind="skipped",
                    loop=loop_report.loop_id(),
                    routine=loop_report.routine,
                    lineno=loop_report.lineno,
                    variable=loop_report.var,
                    detail=f"verdict degraded ({loop_report.degraded})",
                )
            )
            continue
        if not loop_report.parallel or node is None:
            continue
        report.loops_audited += 1
        findings, pairs = audit_loop(
            result.analyzer, loop_report.routine, node, loop_report
        )
        report.findings.extend(findings)
        report.pairs_checked += pairs
        report.findings.extend(
            _replay_evidence(result, loop_report, node, fact_cache)
        )

    if run_lint:
        from .lint import lint_program

        report.lint = lint_program(result, name, source)
    if sanitize.enabled():
        report.sanitizer = sanitize.drain()
    return report
