"""Front-end lint (PAN2xx): flag constructs the analysis only survives
conservatively, so "serial"/"unknown" verdicts stop being unexplainable.

* ``PAN201`` — a DO loop with a premature exit (GOTO/RETURN out of the
  body): the classifier refuses to parallelize it outright (5.4);
* ``PAN202`` — a backward-GOTO cycle condensed by ``hsg/condense.py``:
  every array referenced inside is summarized as wholly read and written
  (guard Δ, region Ω), which poisons any enclosing loop's summary;
* ``PAN203`` — CALL-site aliasing the interprocedural summaries do not
  model: an actual array argument that is also visible to the callee
  through a COMMON block, or the same array passed twice in one call.
"""

from __future__ import annotations

from ..diagnostics import Diagnostic, resolve_span
from ..driver.panorama import CompilationResult
from ..fortran.ast_nodes import NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    LoopNode,
)


def _first_lineno(node: CondensedNode) -> int:
    for member in node.members:
        if isinstance(member, BasicBlockNode):
            for stmt in member.stmts:
                if getattr(stmt, "lineno", 0):
                    return stmt.lineno
    return 0


def _walk_graphs(result: CompilationResult):
    """Yield (unit name, flow graph) for every routine body and loop body."""

    def dig(unit_name: str, graph: FlowGraph):
        yield unit_name, graph
        for node in graph.nodes:
            if isinstance(node, LoopNode):
                yield from dig(unit_name, node.body)

    for unit in result.program.units:
        yield from dig(unit.name, result.hsg.graph(unit.name))


def lint_program(
    result: CompilationResult, file: str, source: str | None = None
) -> list[Diagnostic]:
    """All PAN2xx findings for one compiled program."""
    out: list[Diagnostic] = []

    # PAN201: premature loop exits
    for unit_name, loop in result.hsg.all_loops():
        if loop.has_premature_exit:
            out.append(
                Diagnostic(
                    code="PAN201",
                    message=(
                        f"loop {unit_name}/{loop.source_label or loop.var} "
                        "has a premature exit; it is analyzed conservatively "
                        "and can never be reported parallel"
                    ),
                    span=resolve_span(file, loop.lineno, source),
                    data={"routine": unit_name, "loop": loop.var},
                )
            )

    analyzed = result.analyzed
    for unit_name, graph in _walk_graphs(result):
        for node in graph.nodes:
            # PAN202: condensed backward-GOTO cycles
            if isinstance(node, CondensedNode):
                out.append(
                    Diagnostic(
                        code="PAN202",
                        message=(
                            f"{unit_name}: backward-GOTO cycle of "
                            f"{len(node.members)} node(s) condensed; its "
                            "array accesses are summarized as wholly read "
                            "and written"
                        ),
                        span=resolve_span(file, _first_lineno(node), source),
                        data={"routine": unit_name},
                    )
                )
            # PAN203: CALL-site aliasing
            if isinstance(node, CallNode):
                callee = node.call.name
                try:
                    callee_table = analyzed.table(callee)
                except KeyError:
                    callee_table = None
                caller_table = analyzed.table(unit_name)
                array_args: list[str] = []
                for arg in node.call.args:
                    if isinstance(arg, NameRef) and caller_table.is_array(
                        arg.name
                    ):
                        array_args.append(arg.name)
                lineno = getattr(node.call, "lineno", 0)
                dupes = {a for a in array_args if array_args.count(a) > 1}
                for name in sorted(dupes):
                    out.append(
                        Diagnostic(
                            code="PAN203",
                            message=(
                                f"{unit_name}: array {name} passed more than "
                                f"once to {callee}; the callee's dummies "
                                "alias each other"
                            ),
                            span=resolve_span(file, lineno, source),
                            data={"routine": unit_name, "callee": callee},
                        )
                    )
                if callee_table is None:
                    continue
                for name in dict.fromkeys(array_args):
                    block = caller_table.common_block_of(name)
                    if block is not None and block in callee_table.commons:
                        if name in callee_table.commons.get(block, []):
                            out.append(
                                Diagnostic(
                                    code="PAN203",
                                    message=(
                                        f"{unit_name}: array {name} is "
                                        f"passed to {callee} and also "
                                        f"visible there via COMMON "
                                        f"/{block or ' '}/ — the dummy and "
                                        "the COMMON copy alias"
                                    ),
                                    span=resolve_span(file, lineno, source),
                                    data={
                                        "routine": unit_name,
                                        "callee": callee,
                                        "common": block,
                                    },
                                )
                            )
    return out
