"""Frontier-pass benchmark: upgrades, audit replay, and off-mode parity.

Three workloads (docs/frontier.md):

* the **frontier kernel scoreboard** — every `FRONTIER_KERNELS` loop
  must upgrade from its serial off-verdict to its parallel on-verdict,
  carry at least one evidence record, and audit clean (zero `PAN105`
  replay failures, zero `PAN305` unsupported records);
* **off-mode parity** — with the pass disabled the kernel verdicts fall
  back exactly, and two off-runs serialize bit-identically (nothing
  about the pass leaks into off-mode rows);
* a **Perfect-registry sweep** on and off — the paper kernels must be
  untouched by the toggle (identical per-loop rows), bounding the
  pass's analysis-time overhead on sources it cannot help.

Runs two ways::

    pytest benchmarks/bench_frontier.py --benchmark-only -s   # timed
    python benchmarks/bench_frontier.py --smoke               # CI check

``--smoke`` (and ``PANORAMA_BENCH_CHECK_ONLY=1``) assert only verdicts,
evidence, and audit cleanliness — never wall-clock — so the CI job
cannot flake on a loaded runner while still catching any change that
breaks an upgrade or its evidence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import Panorama
from repro.audit import audit_compilation
from repro.dataflow import AnalysisOptions
from repro.driver.report import format_table
from repro.engine.telemetry import loop_report_row
from repro.kernels import FRONTIER_KERNELS, KERNELS

CHECK_ONLY = bool(os.environ.get("PANORAMA_BENCH_CHECK_ONLY"))

ON = AnalysisOptions(frontier=True)
OFF = AnalysisOptions(frontier=False)


def _kernel_rows() -> tuple[float, list[dict]]:
    """Per-kernel scoreboard rows + wall seconds for the on+off compiles."""
    rows = []
    t0 = time.perf_counter()
    for kernel in FRONTIER_KERNELS:
        on = Panorama(ON, run_machine_model=False).compile(kernel.source)
        off = Panorama(OFF, run_machine_model=False).compile(kernel.source)
        on_report = kernel.target_report(on)
        off_report = kernel.target_report(off)
        audit = audit_compilation(on, kernel.name, source=kernel.source)
        counts = audit.counts()
        off_rows_a = [loop_report_row(r) for r in off.loops]
        off_rows_b = [
            loop_report_row(r)
            for r in Panorama(OFF, run_machine_model=False)
            .compile(kernel.source)
            .loops
        ]
        rows.append(
            {
                "kernel": kernel.name,
                "off": off_report.status.value,
                "on": on_report.status.value,
                "expect_off": kernel.expect_off,
                "expect_on": kernel.expect_on,
                "evidence": len(on_report.evidence),
                "schedule": on_report.schedule or "-",
                "audit_errors": len(audit.errors()),
                "replay_failures": counts["evidence_replay"]
                + counts["evidence_unsupported"],
                "upgrades": on.analyzer.stats.frontier_upgrades,
                "off_stable": json.dumps(off_rows_a, sort_keys=True)
                == json.dumps(off_rows_b, sort_keys=True),
            }
        )
    return time.perf_counter() - t0, rows


def _registry_sweep(options: AnalysisOptions) -> tuple[float, list[dict]]:
    """Compile every distinct Perfect kernel; wall seconds + loop rows."""
    seen: set[str] = set()
    rows: list[dict] = []
    t0 = time.perf_counter()
    for kernel in KERNELS:
        if kernel.source in seen:
            continue
        seen.add(kernel.source)
        result = Panorama(options, run_machine_model=False).compile(
            kernel.source
        )
        rows.extend(loop_report_row(r) for r in result.loops)
    return time.perf_counter() - t0, rows


def _run_benchmark() -> dict:
    kernels_s, rows = _kernel_rows()
    reg_on_s, reg_on = _registry_sweep(ON)
    reg_off_s, reg_off = _registry_sweep(OFF)
    return {
        "rows": rows,
        "kernels_s": kernels_s,
        "registry_on_s": reg_on_s,
        "registry_off_s": reg_off_s,
        "registry_identical": json.dumps(reg_on, sort_keys=True)
        == json.dumps(reg_off, sort_keys=True),
        "registry_loops": len(reg_on),
    }


def _format(report: dict) -> str:
    rows = [
        [
            r["kernel"],
            r["off"],
            r["on"],
            str(r["evidence"]),
            r["schedule"],
            str(r["replay_failures"]),
        ]
        for r in report["rows"]
    ]
    upgraded = sum(1 for r in report["rows"] if r["on"] != r["off"])
    table = format_table(
        ["kernel", "frontier off", "frontier on", "evidence", "schedule",
         "replay failures"],
        rows,
        title=(
            f"Frontier scoreboard: {upgraded}/{len(rows)} upgraded; "
            f"registry untouched: "
            f"{'yes' if report['registry_identical'] else 'NO'} "
            f"({report['registry_loops']} loops, "
            f"on {report['registry_on_s'] * 1000:.0f} ms / "
            f"off {report['registry_off_s'] * 1000:.0f} ms)"
        ),
    )
    return table


def _checks(report: dict, timed: bool) -> list[str]:
    """Failed-check messages (empty = pass)."""
    problems = []
    for r in report["rows"]:
        if r["on"] != r["expect_on"]:
            problems.append(
                f"{r['kernel']}: frontier-on verdict {r['on']!r} != "
                f"expected {r['expect_on']!r}"
            )
        if r["off"] != r["expect_off"]:
            problems.append(
                f"{r['kernel']}: frontier-off verdict {r['off']!r} != "
                f"expected {r['expect_off']!r}"
            )
        if r["evidence"] < 1:
            problems.append(f"{r['kernel']}: upgraded without evidence")
        if r["audit_errors"] or r["replay_failures"]:
            problems.append(
                f"{r['kernel']}: audit not clean "
                f"({r['audit_errors']} errors, "
                f"{r['replay_failures']} replay failures)"
            )
        if not r["off_stable"]:
            problems.append(f"{r['kernel']}: off-mode rows not bit-stable")
    upgraded = sum(1 for r in report["rows"] if r["on"] != r["off"])
    if upgraded < 4:
        problems.append(f"only {upgraded} kernels upgraded (need >= 4)")
    if not report["registry_identical"]:
        problems.append("frontier toggle changed Perfect-registry rows")
    if timed:
        ratio = report["registry_on_s"] / max(report["registry_off_s"], 1e-9)
        if ratio > 5.0:
            problems.append(
                f"frontier overhead on the registry is {ratio:.1f}x "
                "(budget: 5x)"
            )
    return problems


def test_frontier(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    table = _format(report)
    from conftest import emit

    emit("frontier", table)
    problems = _checks(report, timed=False)
    assert not problems, table + "\n" + "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="check-only mode: assert upgrades, evidence, audit "
        "cleanliness, and off-mode parity, never wall-clock (CI-safe)",
    )
    args = parser.parse_args(argv)
    report = _run_benchmark()
    print(_format(report))
    problems = _checks(report, timed=not (args.smoke or CHECK_ONLY))
    for p in problems:
        print(f"FAILED: {p}", file=sys.stderr)
    print(
        ("smoke OK" if args.smoke or CHECK_ONLY else "OK")
        if not problems
        else "FAILED",
        file=sys.stderr,
    )
    return 0 if not problems else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
