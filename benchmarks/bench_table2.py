"""Table 2 reproduction: privatization status of every designated array.

The paper reports every listed array automatically privatized except
MDG's ``RL`` (the Figure 1(a) case needing quantified predicates).  The
harness prints a yes/no per array and asserts exact agreement.
"""

from __future__ import annotations

from repro import Panorama
from repro.driver.report import format_table
from repro.kernels import KERNELS

from conftest import emit


def _statuses():
    results = {}
    rows = []
    agree = True
    for kernel in KERNELS:
        if kernel.source not in results:
            results[kernel.source] = Panorama(
                sizes=kernel.sizes, run_machine_model=False
            ).compile(kernel.source)
        report = results[kernel.source].loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization
        cells = []
        for name in kernel.privatizable:
            ok = any(v.name == name and v.privatizable for v in priv.verdicts)
            agree = agree and ok
            cells.append(f"{name.upper()}:{'yes' if ok else 'NO!'}")
        for name in kernel.not_privatizable:
            ok = any(v.name == name and v.privatizable for v in priv.verdicts)
            agree = agree and not ok
            cells.append(f"{name.upper()}:{'no' if not ok else 'YES!'}")
        rows.append([kernel.program, kernel.loop_id, " ".join(cells)])
    return rows, agree


def test_table2(benchmark):
    rows, agree = benchmark(_statuses)
    table = format_table(
        ["program", "loop", "array status (paper: all yes except MDG RL)"],
        rows,
        title="Table 2: automatically privatizable arrays",
    )
    emit("table2", table)
    assert agree, table
