"""Scaling study: analysis cost vs program size.

Supports the practicality claim behind Figure 4: the summary-based
analysis visits each HSG node once per enclosing summary computation, so
cost should grow roughly linearly in program size (routines) and stay
polynomial in nesting depth.
"""

from __future__ import annotations

import time

import pytest

from repro import Panorama
from repro.driver.report import format_table
from repro.kernels.synthetic import make_loop_nest

from conftest import emit


def _time_once(src: str) -> float:
    panorama = Panorama(run_machine_model=False)
    t0 = time.perf_counter()
    panorama.compile(src)
    return (time.perf_counter() - t0) * 1000.0


def test_scaling_with_routines(benchmark):
    def run():
        rows = []
        times = []
        for routines in (1, 2, 4, 8):
            src = make_loop_nest(depth=2, width=3, routines=routines)
            ms = _time_once(src)
            rows.append([routines, len(src.splitlines()), f"{ms:.1f}"])
            times.append(ms)
        return rows, times

    rows, times = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["routines", "source lines", "analysis ms"],
        rows,
        title="Scaling: routines vs analysis time (expect ~linear)",
    )
    emit("scaling_routines", table)
    # 8x the routines should cost well under 8x^2 the time
    assert times[-1] < max(times[0], 1.0) * 64, table


def test_scaling_with_depth(benchmark):
    def run():
        rows = []
        for depth in (1, 2, 3, 4):
            src = make_loop_nest(depth=depth, width=3, routines=1)
            ms = _time_once(src)
            rows.append([depth, f"{ms:.1f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["nest depth", "analysis ms"],
        rows,
        title="Scaling: loop-nest depth vs analysis time",
    )
    emit("scaling_depth", table)


@pytest.mark.parametrize("routines", [1, 4])
def test_nest_analysis(benchmark, routines):
    src = make_loop_nest(depth=2, width=3, routines=routines)
    panorama = Panorama(run_machine_model=False)
    benchmark(panorama.compile, src)
