"""Fleet-scale campaign benchmark: shared tier and topology scheduling.

Two comparisons on a seeded caller-heavy campaign corpus (a routine
pool repeated across many driver programs — the workload where warm
summaries matter):

1. **Shared vs private tiers.** Two concurrent engine instances
   (threads, one corpus shard each) run against one shared SQLite tier,
   then against per-shard private disk caches.  The shared fleet must
   compute each pool routine once — fewer stores, cross-shard hits —
   and, when timed, finish faster.

2. **Topo vs arbitrary dispatch.** A worker pool analyzes the corpus in
   adversarial callers-first order, then topology-scheduled (providers
   gated first).  Topo must convert gated items into warm hits
   (``sched.topo_hits``) and, when timed, beat the arbitrary order.

Verdicts must be bit-identical across every configuration, always.
Run modes::

    pytest benchmarks/bench_campaign.py --benchmark-only -s
    python benchmarks/bench_campaign.py --smoke               # CI check

``--smoke`` (and ``PANORAMA_BENCH_CHECK_ONLY=1``) shrink the corpus and
assert only verdict identity and cache-traffic shape, never wall-clock.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.dataflow import AnalysisOptions
from repro.driver.report import format_table
from repro.engine import BatchEngine, BatchItem
from repro.engine.campaign import generate_campaign, shard_items
from repro.kernels.synthetic import (
    make_call_chain,
    make_driver,
    make_heavy_routine,
)

CHECK_ONLY = bool(os.environ.get("PANORAMA_BENCH_CHECK_ONLY"))

SEED = 7
SHARDS = 2
POOL_JOBS = 4


def _corpus(count: int, families: int, apps_per_family: int, depth: int):
    """Caller-heavy corpus in adversarial callers-first order.

    The expensive providers are *call-chain families*
    (:func:`make_call_chain`): summarizing a chain head walks every
    link, so a caller that misses the warm tier pays the whole walk.
    Each family's apps are contiguous in the order — an arbitrary
    pool dispatches a whole wave of same-family callers cold, a
    topology-aware one analyzes the family's library item first and
    serves everyone.  A :func:`make_heavy_routine` cluster (loop-record
    -heavy rather than summary-heavy entries) and a seeded campaign
    corpus ride along for breadth.  Every consumer precedes every
    provider in the returned order.
    """
    consumers: list[BatchItem] = []
    providers: list[BatchItem] = []
    for f in range(families):
        prefix = f"CH{f:02d}X"
        src = make_call_chain(prefix, depth)
        providers.append(BatchItem(name=f"clib-{f:02d}", source=src))
        consumers += [
            BatchItem(
                name=f"capp-{f:02d}-{a}",
                source=make_driver(
                    f"CAPP{f}A{a}", [f"{prefix}0"], span=500, trips=20 + a
                )
                + src,
            )
            for a in range(apps_per_family)
        ]
    heavy = [
        (f"HVY{i}", make_heavy_routine(f"HVY{i}", blocks=max(2, depth - 2)))
        for i in range(2)
    ]
    heavy_src = "".join(s for _, s in heavy)
    providers += [BatchItem(name=f"hlib-{n}", source=s) for n, s in heavy]
    consumers += [
        BatchItem(
            name=f"happ-{k}",
            source=make_driver(
                f"HAPP{k}", [n for n, _ in heavy], trips=30 + k
            )
            + heavy_src,
        )
        for k in range(4)
    ]
    breadth = generate_campaign(count, seed=SEED, library_size=8)
    consumers += [i for i in breadth if not i.name.startswith("lib-")]
    providers = [
        i for i in breadth if i.name.startswith("lib-")
    ] + providers
    return consumers + providers


def _merged_verdicts(reports):
    merged: dict = {}
    for report in reports:
        merged.update(report.verdict_rows())
    return merged


def _run_fleet(items, cache_dirs, backend):
    """*SHARDS* concurrent engine instances, one per shard; returns
    (wall_ms, reports).  ``cache_dirs`` has one entry per shard (the
    same entry repeated = one shared tier)."""
    shards = [shard_items(items, i + 1, SHARDS) for i in range(SHARDS)]
    reports: list = [None] * SHARDS
    engines = [
        BatchEngine(
            AnalysisOptions(), cache_dir=cache_dirs[i], jobs=1,
            run_machine_model=False, cache_backend=backend, schedule="topo",
        )
        for i in range(SHARDS)
    ]

    def work(i):
        reports[i] = engines[i].run(shards[i])

    threads = [threading.Thread(target=work, args=(i,)) for i in range(SHARDS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    for engine in engines:
        engine.cache.close()
    return wall_ms, reports


def _run_pool(items, cache_dir, schedule):
    engine = BatchEngine(
        AnalysisOptions(), cache_dir=cache_dir, jobs=POOL_JOBS,
        run_machine_model=False, cache_backend="shared", schedule=schedule,
    )
    t0 = time.perf_counter()
    report = engine.run(items)
    wall_ms = (time.perf_counter() - t0) * 1000.0
    engine.cache.close()
    return wall_ms, report


def _best_of(runs):
    """Min wall-clock over repeated fresh runs (noise suppression);
    reports come from the first repetition."""
    walls, first = [], None
    for run in runs:
        wall, result = run()
        walls.append(wall)
        if first is None:
            first = result
    return min(walls), first


def _run_benchmark(count: int | None = None) -> dict:
    if count is None:
        count = 12 if CHECK_ONLY else 24
    smoke = CHECK_ONLY or count <= 12
    if smoke:
        items = _corpus(count, families=4, apps_per_family=3, depth=6)
    else:
        items = _corpus(count, families=10, apps_per_family=5, depth=8)
    reps = 1 if smoke else 2
    root = tempfile.mkdtemp(prefix="panorama-bench-campaign-")
    try:
        # reference verdicts: plain sequential, no cache
        ref_engine = BatchEngine(
            AnalysisOptions(), jobs=1, run_machine_model=False
        )
        ref = ref_engine.run(list(items)).verdict_rows()

        # fresh cache directories per repetition: a rerun must be cold
        def fleet_shared(rep):
            return lambda: _run_fleet(
                items, [os.path.join(root, f"shared{rep}")] * SHARDS,
                "shared",
            )

        def fleet_private(rep):
            return lambda: _run_fleet(
                items,
                [os.path.join(root, f"priv{rep}-{i}")
                 for i in range(SHARDS)],
                "disk",
            )

        def pool(rep, schedule):
            return lambda: _run_pool(
                items, os.path.join(root, f"{schedule}{rep}"), schedule
            )

        # --- comparison 1: shared tier vs per-shard private caches ----- #
        shared_ms, shared_reports = _best_of(
            [fleet_shared(r) for r in range(reps)]
        )
        private_ms, private_reports = _best_of(
            [fleet_private(r) for r in range(reps)]
        )

        # --- comparison 2: topo vs arbitrary dispatch in the pool ------ #
        arb_ms, arb_report = _best_of(
            [pool(r, "arbitrary") for r in range(reps)]
        )
        topo_ms, topo_report = _best_of(
            [pool(r, "topo") for r in range(reps)]
        )

        def fleet_cache(reports, attr):
            return sum(getattr(r.telemetry.cache, attr) for r in reports)

        return {
            "count": count,
            "ref": ref,
            "fleet": {
                "shared_ms": shared_ms,
                "private_ms": private_ms,
                "shared_verdicts": _merged_verdicts(shared_reports),
                "private_verdicts": _merged_verdicts(private_reports),
                "shared_stores": fleet_cache(shared_reports, "stores"),
                "private_stores": fleet_cache(private_reports, "stores"),
                "shared_hits": fleet_cache(shared_reports, "shared_hits"),
                "shared_ok": all(r.ok for r in shared_reports),
                "private_ok": all(r.ok for r in private_reports),
            },
            "pool": {
                "arb_ms": arb_ms,
                "topo_ms": topo_ms,
                "arb_verdicts": arb_report.verdict_rows(),
                "topo_verdicts": topo_report.verdict_rows(),
                "topo_hits": topo_report.telemetry.sched["topo_hits"],
                "gated": topo_report.telemetry.sched["gated_items"],
                "arb_stores": arb_report.telemetry.cache.stores,
                "topo_stores": topo_report.telemetry.cache.stores,
                "arb_ok": arb_report.ok,
                "topo_ok": topo_report.ok,
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _format(report: dict) -> str:
    fleet, pool = report["fleet"], report["pool"]
    rows = [
        [
            f"{SHARDS} engines, private disk tiers",
            f"{fleet['private_ms']:.0f}",
            str(fleet["private_stores"]),
            "-",
            "1.00x",
        ],
        [
            f"{SHARDS} engines, one shared tier",
            f"{fleet['shared_ms']:.0f}",
            str(fleet["shared_stores"]),
            str(fleet["shared_hits"]),
            f"{fleet['private_ms'] / max(fleet['shared_ms'], 1e-9):.2f}x",
        ],
        [
            f"pool x{POOL_JOBS}, arbitrary (callers first)",
            f"{pool['arb_ms']:.0f}",
            str(pool["arb_stores"]),
            "-",
            "1.00x",
        ],
        [
            f"pool x{POOL_JOBS}, topo ({pool['gated']} gated)",
            f"{pool['topo_ms']:.0f}",
            str(pool["topo_stores"]),
            str(pool["topo_hits"]),
            f"{pool['arb_ms'] / max(pool['topo_ms'], 1e-9):.2f}x",
        ],
    ]
    return format_table(
        ["configuration", "wall ms", "stores", "warm hits", "speedup"],
        rows,
        title=(
            f"Campaign fleet: {report['count']}-item caller-heavy corpus "
            f"(seed {SEED}), shared-vs-private tier and topo-vs-arbitrary"
        ),
    )


def _checks(report: dict, timed: bool) -> list[str]:
    """Failed-check messages (empty = pass)."""
    fleet, pool = report["fleet"], report["pool"]
    problems = []
    if not (fleet["shared_ok"] and fleet["private_ok"]
            and pool["arb_ok"] and pool["topo_ok"]):
        problems.append("a configuration reported item failures")
    for label, verdicts in (
        ("shared fleet", fleet["shared_verdicts"]),
        ("private fleet", fleet["private_verdicts"]),
        ("arbitrary pool", pool["arb_verdicts"]),
        ("topo pool", pool["topo_verdicts"]),
    ):
        if verdicts != report["ref"]:
            problems.append(f"{label}: verdicts differ from the reference")
    if fleet["shared_hits"] == 0:
        problems.append("shared tier never served a cross-engine hit")
    if fleet["shared_stores"] > fleet["private_stores"]:
        problems.append(
            "shared tier stored more than the private tiers "
            f"({fleet['shared_stores']} > {fleet['private_stores']})"
        )
    if pool["gated"] == 0:
        problems.append("topo plan gated nothing on a caller-heavy corpus")
    if pool["topo_hits"] == 0:
        problems.append("topo order produced no warm hits on gated items")
    if timed:
        if fleet["shared_ms"] >= fleet["private_ms"]:
            problems.append(
                "shared tier not faster than private tiers "
                f"({fleet['shared_ms']:.0f}ms >= {fleet['private_ms']:.0f}ms)"
            )
        if pool["topo_ms"] >= pool["arb_ms"]:
            problems.append(
                "topo dispatch not faster than arbitrary "
                f"({pool['topo_ms']:.0f}ms >= {pool['arb_ms']:.0f}ms)"
            )
    return problems


def test_campaign_fleet(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    table = _format(report)
    from conftest import emit

    emit("campaign", table)
    problems = _checks(report, timed=False)
    assert not problems, table + "\n" + "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="check-only mode: assert verdict identity and cache-traffic "
        "shape on a small corpus, never wall-clock (CI-safe)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="breadth-corpus size (default: 24, or 12 in smoke mode)",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke or CHECK_ONLY
    count = args.count if args.count else (12 if smoke else 24)
    report = _run_benchmark(count)
    print(_format(report))
    problems = _checks(report, timed=not smoke)
    for p in problems:
        print(f"FAILED: {p}", file=sys.stderr)
    print(
        ("smoke OK" if smoke else "OK") if not problems else "FAILED",
        file=sys.stderr,
    )
    return 0 if not problems else 1


if __name__ == "__main__":
    sys.exit(main())
