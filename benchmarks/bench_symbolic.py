"""Symbolic-kernel fast-path benchmark: warm-vs-cold proof caches.

Two workloads, both verdict-checked:

* a repeated-comparison microbenchmark — one :class:`Comparer` context
  asked the same family of ordered-comparison questions over and over,
  the shape the region operations produce during propagation.  Warm
  (populated memo tables) must beat cold (tables cleared every round)
  by at least 2x, with identical three-valued verdicts.
* an end-to-end sweep over the Perfect-kernel registry — a second
  compile sweep with warm interning/proof caches must not be slower
  than the cold sweep, and the per-loop verdict rows must be
  bit-identical (the caches are invisible to results by construction).

Runs two ways::

    pytest benchmarks/bench_symbolic.py --benchmark-only -s   # timed
    python benchmarks/bench_symbolic.py --smoke               # CI check

``--smoke`` asserts only verdict identity and cache effectiveness (hits
observed), never wall-clock — so the CI job cannot flake on a loaded
runner while still catching any cache that changes results.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import Panorama
from repro.driver.report import format_table
from repro.engine.telemetry import loop_report_row
from repro.kernels import KERNELS
from repro.perf import profiler
from repro.symbolic import Comparer, Predicate, Relation, SymExpr

from conftest import emit

#: microbenchmark rounds (cold pays full price each round)
ROUNDS = 30


# --------------------------------------------------------------------------- #
# repeated-comparison microbenchmark
# --------------------------------------------------------------------------- #


def _comparer_round() -> tuple:
    """One round of the repeated-comparison workload; returns verdicts."""
    n = SymExpr.var("n")
    m = SymExpr.var("m")
    i = SymExpr.var("i")
    j = SymExpr.var("j")
    context = (
        Predicate.ge(n, 1)
        & Predicate.le(i, n)
        & Predicate.ge(i, 1)
        & Predicate.le(j, m)
        & Predicate.ge(j, 1)
        & Predicate.le(m, n)
    )
    cmp = Comparer(context)
    exprs = [i, j, n, m, i + j, i + 1, n - i, m - j, i * 2, n + m]
    verdicts = []
    for a in exprs:
        for b in exprs:
            verdicts.append(cmp.le(a, b))
            verdicts.append(cmp.lt(a, b))
            verdicts.append(cmp.eq(a, b))
    # refinement chain: the guard-algebra shape from the region layers
    refined = cmp.refine(Predicate.le(i + 1, j))
    for a in exprs:
        verdicts.append(refined.le(a, n))
        verdicts.append(refined.prove(Relation.lt(i, j)))
    return tuple(verdicts)


def _time_comparer(warm: bool) -> tuple[float, tuple]:
    """Seconds for ROUNDS rounds; cold clears every cache each round."""
    profiler.clear_caches()
    if warm:
        _comparer_round()  # prime the tables outside the timed region
    verdicts = None
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        if not warm:
            profiler.clear_caches()
        verdicts = _comparer_round()
    return time.perf_counter() - t0, verdicts


# --------------------------------------------------------------------------- #
# end-to-end kernel sweep
# --------------------------------------------------------------------------- #


def _kernel_sweep() -> tuple[float, list[dict]]:
    """Compile every distinct kernel source; wall seconds + verdict rows."""
    seen: set[str] = set()
    rows: list[dict] = []
    t0 = time.perf_counter()
    for kernel in KERNELS:
        if kernel.source in seen:
            continue
        seen.add(kernel.source)
        result = Panorama(sizes=kernel.sizes).compile(kernel.source)
        rows.extend(loop_report_row(r) for r in result.loops)
    return time.perf_counter() - t0, rows


def _run_benchmark() -> dict:
    cold_s, cold_verdicts = _time_comparer(warm=False)
    warm_s, warm_verdicts = _time_comparer(warm=True)

    profiler.clear_caches()
    before = profiler.snapshot()
    sweep_cold_s, sweep_cold_rows = _kernel_sweep()
    sweep_warm_s, sweep_warm_rows = _kernel_sweep()
    cache_delta = profiler.delta(before, profiler.snapshot())
    hits = sum(
        v for k, v in cache_delta.items()
        if k.startswith("cache.") and k.endswith(".hits")
    )
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-9),
        "verdicts_identical": cold_verdicts == warm_verdicts,
        "sweep_cold_s": sweep_cold_s,
        "sweep_warm_s": sweep_warm_s,
        "sweep_speedup": sweep_cold_s / max(sweep_warm_s, 1e-9),
        "sweep_identical": json.dumps(sweep_cold_rows, sort_keys=True)
        == json.dumps(sweep_warm_rows, sort_keys=True),
        "loops": len(sweep_cold_rows),
        "cache_hits": int(hits),
    }


def _format(report: dict) -> str:
    rows = [
        [
            "Comparer microbenchmark",
            f"{report['cold_s'] * 1000:.1f}",
            f"{report['warm_s'] * 1000:.1f}",
            f"{report['speedup']:.2f}x",
            "yes" if report["verdicts_identical"] else "NO",
        ],
        [
            f"kernel sweep ({report['loops']} loops)",
            f"{report['sweep_cold_s'] * 1000:.1f}",
            f"{report['sweep_warm_s'] * 1000:.1f}",
            f"{report['sweep_speedup']:.2f}x",
            "yes" if report["sweep_identical"] else "NO",
        ],
    ]
    return format_table(
        ["workload", "cold ms", "warm ms", "speedup", "verdicts identical"],
        rows,
        title="Symbolic fast path: warm vs. cold proof/interning caches",
    )


def test_symbolic_fast_path(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    table = _format(report)
    emit("symbolic", table)
    assert report["verdicts_identical"], table
    assert report["sweep_identical"], table
    assert report["cache_hits"] > 0, table
    # the acceptance bar: repeated comparisons at least 2x faster warm
    assert report["speedup"] >= 2.0, table
    # end-to-end: a warm sweep must not lose to a cold one
    assert report["sweep_warm_s"] <= report["sweep_cold_s"] * 1.10, table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="check-only mode: assert verdict identity and cache hits, "
        "never wall-clock (CI-safe)",
    )
    args = parser.parse_args(argv)
    report = _run_benchmark()
    print(_format(report))
    ok = (
        report["verdicts_identical"]
        and report["sweep_identical"]
        and report["cache_hits"] > 0
    )
    if not args.smoke:
        ok = ok and report["speedup"] >= 2.0
    print(
        "smoke OK" if args.smoke and ok else
        ("OK" if ok else "FAILED"),
        file=sys.stderr,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
