"""Table 1 reproduction: loops parallelized by array privatization.

Regenerates every column of the paper's Table 1 for the twelve
Perfect-loop kernels:

* loop speedup (our machine model vs the paper's Alliant FX/8 numbers),
* percent of sequential execution time,
* the T1/T2/T3 technique requirements (by ablation).

The timed portion is the full analysis of all five kernel programs.
"""

from __future__ import annotations

import pytest

from repro import AnalysisOptions, Panorama
from repro.driver.report import format_table
from repro.kernels import KERNELS
from repro.parallelize import LoopStatus

from conftest import emit


def _compile_all():
    results = {}
    for kernel in KERNELS:
        if kernel.source not in results:
            results[kernel.source] = Panorama(sizes=kernel.sizes).compile(
                kernel.source
            )
    return results


def _techniques_needed(kernel) -> list[str]:
    needed = []
    for technique in ("T1", "T2", "T3"):
        result = Panorama(
            AnalysisOptions.ablation(technique), run_machine_model=False
        ).compile(kernel.source)
        report = result.loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization if report.verdict else None
        ok = bool(priv) and all(
            any(v.name == n and v.privatizable for v in priv.verdicts)
            for n in kernel.privatizable
        )
        needed.append("No" if ok else "Yes")
    return needed


def test_table1(benchmark):
    results = benchmark(_compile_all)
    from repro.machine import MachineModel

    machine = MachineModel()
    rows = []
    matches = 0
    for kernel in KERNELS:
        result = results[kernel.source]
        report = result.loop(kernel.routine, kernel.loop_label)
        status = report.verdict.status_modulo(
            frozenset(kernel.not_privatizable)
        )
        t1, t2, t3 = _techniques_needed(kernel)
        expected = ["Yes" if t in kernel.techniques else "No"
                    for t in ("T1", "T2", "T3")]
        ok = [t1, t2, t3] == expected and status is not LoopStatus.SERIAL
        matches += ok
        # speedup of the loop once its designated arrays are privatized
        # (MDG interf needs RL privatized by hand, as in the paper)
        speedup = report.speedup
        if status is not LoopStatus.SERIAL and report.cost is not None:
            speedup = machine.loop_speedup(report.cost)
        rows.append(
            [
                kernel.program,
                kernel.loop_id,
                f"{speedup:.1f}",
                f"{kernel.paper_speedup:.1f}"
                + ("*" if kernel.speedup_estimated else ""),
                f"{report.pct_sequential:.0f}%",
                f"{kernel.paper_pct_seq:.0f}%",
                t1,
                t2,
                t3,
                "/".join(expected),
                "ok" if ok else "MISMATCH",
            ]
        )
    table = format_table(
        ["program", "loop", "spdup", "paper", "%seq", "paper",
         "T1", "T2", "T3", "paper T1/T2/T3", ""],
        rows,
        title="Table 1: loops parallel after privatization "
        "(speedups: 8-CPU machine model; * = paper value is an estimate)",
    )
    emit("table1", table)
    assert matches == len(KERNELS), table


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.full_id)
def test_loop_analysis_time(benchmark, kernel):
    """Per-kernel analysis cost (parse + HSG + dataflow + verdicts)."""
    panorama = Panorama(sizes=kernel.sizes, run_machine_model=False)
    result = benchmark(panorama.compile, kernel.source)
    report = result.loop(kernel.routine, kernel.loop_label)
    assert report.verdict is not None
