"""Batch engine benchmark: warm-vs-cold cache and 1-vs-N-worker throughput.

Extends the Figure 4 "analysis costs little" argument to the serving
layer: the content-addressed summary cache should make a warm rerun of
the five Perfect-benchmark programs substantially cheaper than a cold
one (with bit-identical verdicts), and a multi-worker cold batch should
beat the sequential one wherever the hardware actually has cores.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.driver.report import format_table
from repro.engine import BatchEngine, items_from_kernel_registry

from conftest import emit

JOBS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(engine: BatchEngine, items):
    t0 = time.perf_counter()
    report = engine.run(items)
    return (time.perf_counter() - t0) * 1000.0, report


def _bench_rows():
    items = items_from_kernel_registry()
    cache_dir = tempfile.mkdtemp(prefix="panorama-bench-cache-")
    try:
        seq_ms, seq_report = _timed_run(BatchEngine(jobs=1), items)

        par_dir = os.path.join(cache_dir, "par")
        par_ms, par_report = _timed_run(
            BatchEngine(cache_dir=par_dir, jobs=JOBS), items
        )

        warm_dir = os.path.join(cache_dir, "warm")
        cold_ms, cold_report = _timed_run(
            BatchEngine(cache_dir=warm_dir, jobs=1), items
        )
        warm_ms, warm_report = _timed_run(
            BatchEngine(cache_dir=warm_dir, jobs=1), items
        )

        rows = [
            ["sequential cold (no cache)", 1, f"{seq_ms:.0f}", 0, 0, "1.00x"],
            [
                f"pool cold ({JOBS} jobs)",
                JOBS,
                f"{par_ms:.0f}",
                par_report.telemetry.cache.hits,
                par_report.telemetry.cache.misses,
                f"{seq_ms / max(par_ms, 1e-9):.2f}x",
            ],
            [
                "sequential cold (fresh cache)",
                1,
                f"{cold_ms:.0f}",
                cold_report.telemetry.cache.hits,
                cold_report.telemetry.cache.misses,
                f"{seq_ms / max(cold_ms, 1e-9):.2f}x",
            ],
            [
                "sequential warm (reused cache)",
                1,
                f"{warm_ms:.0f}",
                warm_report.telemetry.cache.hits,
                warm_report.telemetry.cache.misses,
                f"{seq_ms / max(warm_ms, 1e-9):.2f}x",
            ],
        ]
        checks = {
            "seq_ms": seq_ms,
            "par_ms": par_ms,
            "warm_ms": warm_ms,
            "cold_ms": cold_ms,
            "warm_hits": warm_report.telemetry.cache.hits,
            "verdicts_identical": (
                seq_report.verdict_rows() == warm_report.verdict_rows()
                and seq_report.verdict_rows() == par_report.verdict_rows()
            ),
            "all_ok": seq_report.ok and par_report.ok
            and cold_report.ok and warm_report.ok,
        }
        return rows, checks
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_engine_throughput(benchmark):
    rows, checks = benchmark.pedantic(_bench_rows, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "jobs", "wall ms", "cache hits", "cache misses",
         "speedup vs seq cold"],
        rows,
        title=(
            "Batch engine: five Perfect programs, warm-vs-cold and "
            f"1-vs-{JOBS} workers ({_cpus()} CPU(s) available)"
        ),
    )
    emit("engine", table)
    assert checks["all_ok"], table
    assert checks["verdicts_identical"], table
    assert checks["warm_hits"] > 0, table
    if os.environ.get("PANORAMA_BENCH_CHECK_ONLY"):
        # CI smoke mode: verdict identity only — wall-clock comparisons
        # flake on loaded shared runners
        return
    # a warm cache must beat a cold sequential run outright
    assert checks["warm_ms"] < checks["seq_ms"], table
    # worker fan-out only wins where the hardware has cores to fan over
    if _cpus() >= 2:
        assert checks["par_ms"] < checks["seq_ms"], table
