"""Constraint-core benchmark: the matrix FM backends against the oracle.

Three workloads, all verdict-checked across every available backend
(``numpy`` when importable, the pure-Python ``python`` fallback, and the
``object``-layer reference oracle):

* an FM-heavy microbenchmark — dense ordered systems whose elimination
  cost dwarfs expression plumbing, the shape the matrix core exists for;
* a batched-query workload through :func:`definitely_unsat_many` — the
  entry the dependence tests and region ops use;
* an end-to-end sweep over the Perfect-kernel registry, cold and warm —
  per-loop verdict rows must be **bit-identical** for every backend.

Runs two ways::

    pytest benchmarks/bench_constraints.py --benchmark-only -s   # timed
    python benchmarks/bench_constraints.py --smoke               # CI check

``--smoke`` (and ``PANORAMA_BENCH_CHECK_ONLY=1``) assert only verdict
identity across backends plus matrix-path traffic — never wall-clock —
so the CI job cannot flake on a loaded runner while still catching any
backend that changes results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import Panorama
from repro.driver.report import format_table
from repro.engine.telemetry import loop_report_row
from repro.kernels import KERNELS
from repro.perf import profiler
from repro.symbolic import Relation, SymExpr, definitely_unsat_many
from repro.symbolic import fourier_motzkin as fm
from repro.symbolic import matrix

CHECK_ONLY = bool(os.environ.get("PANORAMA_BENCH_CHECK_ONLY"))

#: FM-heavy rounds (distinct systems, so memo tables never help)
FM_ROUNDS = 12 if CHECK_ONLY else 40


def _backends() -> list[str]:
    out = ["numpy"] if matrix.HAVE_NUMPY else []
    return out + ["python", "object"]


# --------------------------------------------------------------------------- #
# FM-heavy microbenchmark
# --------------------------------------------------------------------------- #


def _dense_atoms(n: int, off: int) -> list:
    """A dense ordered system over n variables (all-pairs orderings,
    bounds, and a closing cycle making it infeasible)."""
    vs = [SymExpr.var(f"i{k}") for k in range(n)]
    atoms = []
    for k in range(n - 1):
        atoms.append(Relation.le(vs[k] + 1, vs[k + 1]))
    for k in range(n):
        atoms.append(Relation.le(SymExpr.const(off), vs[k]))
        atoms.append(Relation.le(vs[k], SymExpr.const(off + 100)))
    for a in range(n):
        for b in range(a + 1, n):
            atoms.append(Relation.le(vs[a], vs[b] + (b - a)))
    atoms.append(Relation.le(vs[-1] + 1, vs[0]))
    return atoms


def _fm_heavy() -> tuple[float, tuple]:
    """Seconds + verdicts for FM_ROUNDS dense eliminations (uncached)."""
    verdicts = []
    t0 = time.perf_counter()
    for rep in range(FM_ROUNDS):
        for n in (8, 12, 16):
            atoms = _dense_atoms(n, 1000 * n + rep)
            fm._UNSAT_CACHE._data.clear()
            verdicts.append(fm.definitely_unsat(atoms))
    return time.perf_counter() - t0, tuple(verdicts)


def _batched() -> tuple[float, tuple]:
    """Seconds + verdicts for batch submissions via definitely_unsat_many."""
    systems = []
    for rep in range(FM_ROUNDS):
        for n in (6, 9):
            systems.append(_dense_atoms(n, -1000 * n - rep))
    fm._UNSAT_CACHE._data.clear()
    t0 = time.perf_counter()
    verdicts = tuple(definitely_unsat_many(systems))
    return time.perf_counter() - t0, verdicts


# --------------------------------------------------------------------------- #
# end-to-end kernel sweep
# --------------------------------------------------------------------------- #


def _kernel_sweep() -> tuple[float, list[dict]]:
    """Compile every distinct kernel source; wall seconds + verdict rows."""
    seen: set[str] = set()
    rows: list[dict] = []
    t0 = time.perf_counter()
    for kernel in KERNELS:
        if kernel.source in seen:
            continue
        seen.add(kernel.source)
        result = Panorama(sizes=kernel.sizes).compile(kernel.source)
        rows.extend(loop_report_row(r) for r in result.loops)
    return time.perf_counter() - t0, rows


def _run_backend(backend: str) -> dict:
    matrix.set_backend(backend)
    try:
        profiler.clear_caches()
        before = profiler.snapshot()
        fm_s, fm_verdicts = _fm_heavy()
        batch_s, batch_verdicts = _batched()
        profiler.clear_caches()
        sweep_cold_s, rows = _kernel_sweep()
        sweep_warm_s, warm_rows = _kernel_sweep()
        delta = profiler.delta(before, profiler.snapshot())
        return {
            "backend": backend,
            "fm_s": fm_s,
            "fm_verdicts": fm_verdicts,
            "batch_s": batch_s,
            "batch_verdicts": batch_verdicts,
            "sweep_cold_s": sweep_cold_s,
            "sweep_warm_s": sweep_warm_s,
            "rows_json": json.dumps(rows, sort_keys=True),
            "warm_identical": json.dumps(warm_rows, sort_keys=True)
            == json.dumps(rows, sort_keys=True),
            "loops": len(rows),
            "matrix_systems": int(
                delta.get("counter.fm_matrix_systems", 0)
            ),
            "batched_queries": int(
                delta.get("counter.fm_batched_queries", 0)
            ),
            "overflow_promotions": int(
                delta.get("counter.fm_matrix_overflow_promotions", 0)
            ),
        }
    finally:
        matrix.set_backend(None)


def _run_benchmark() -> dict:
    reports = [_run_backend(b) for b in _backends()]
    ref = reports[-1]  # the object oracle is always last
    identical = all(
        r["rows_json"] == ref["rows_json"]
        and r["fm_verdicts"] == ref["fm_verdicts"]
        and r["batch_verdicts"] == ref["batch_verdicts"]
        and r["warm_identical"]
        for r in reports
    )
    return {"reports": reports, "identical": identical}


def _format(report: dict) -> str:
    rows = []
    ref = report["reports"][-1]
    for r in report["reports"]:
        rows.append(
            [
                r["backend"],
                f"{r['fm_s'] * 1000:.1f}",
                f"{ref['fm_s'] / max(r['fm_s'], 1e-9):.2f}x",
                f"{r['batch_s'] * 1000:.1f}",
                f"{r['sweep_cold_s'] * 1000:.1f}",
                f"{r['sweep_warm_s'] * 1000:.1f}",
                str(r["matrix_systems"]),
                str(r["overflow_promotions"]),
            ]
        )
    table = format_table(
        [
            "backend",
            "fm-heavy ms",
            "vs object",
            "batched ms",
            "sweep cold ms",
            "sweep warm ms",
            "matrix systems",
            "promotions",
        ],
        rows,
        title=(
            f"Constraint core: {report['reports'][0]['loops']} loop rows, "
            f"verdicts identical: "
            f"{'yes' if report['identical'] else 'NO'}"
        ),
    )
    return table


def _checks(report: dict, timed: bool) -> list[str]:
    """Failed-check messages (empty = pass)."""
    problems = []
    if not report["identical"]:
        problems.append("per-loop verdict rows differ across backends")
    for r in report["reports"]:
        if r["backend"] != "object" and r["matrix_systems"] == 0:
            problems.append(f"{r['backend']}: matrix path saw no systems")
        if r["batched_queries"] == 0:
            problems.append(f"{r['backend']}: batch entry saw no queries")
    if timed:
        fastest = min(
            r["fm_s"] for r in report["reports"] if r["backend"] != "object"
        )
        ref = report["reports"][-1]["fm_s"]
        if fastest > ref:
            problems.append("matrix backends slower than the object oracle")
    return problems


def test_constraint_backends(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    table = _format(report)
    from conftest import emit

    emit("constraints", table)
    problems = _checks(report, timed=False)
    assert not problems, table + "\n" + "\n".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="check-only mode: assert cross-backend verdict identity and "
        "matrix-path traffic, never wall-clock (CI-safe)",
    )
    args = parser.parse_args(argv)
    report = _run_benchmark()
    print(_format(report))
    problems = _checks(report, timed=not (args.smoke or CHECK_ONLY))
    for p in problems:
        print(f"FAILED: {p}", file=sys.stderr)
    print(
        ("smoke OK" if args.smoke or CHECK_ONLY else "OK")
        if not problems
        else "FAILED",
        file=sys.stderr,
    )
    return 0 if not problems else 1


if __name__ == "__main__":
    sys.exit(main())
