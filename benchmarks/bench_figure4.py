"""Figure 4 reproduction: analysis cost (elapsed time and memory).

The paper compares Panorama against ``f77 -O`` on a Sparc 2 to argue its
analysis is *practical*: whole-pipeline time comparable to an ordinary
compiler, with a larger memory footprint from the array summaries.

Substitution (no ``f77`` here): we measure our own pipeline in three
configurations per benchmark program —

* ``parser``      — parse + semantic analysis only (the paper's "parser" bar),
* ``conventional``— parser + HSG + conventional dependence tests,
* ``panorama``    — the full symbolic array dataflow pipeline,

reporting wall-clock milliseconds and peak ``tracemalloc`` KiB.  The
claims checked are the figure's shape: full analysis stays within a small
multiple of parsing time, and memory grows substantially with the
summaries.
"""

from __future__ import annotations

import time
import tracemalloc

from repro import Panorama
from repro.driver.report import format_table
from repro.fortran import analyze, parse_program
from repro.kernels import KERNELS

from conftest import emit

PROGRAMS = {}
for kernel in KERNELS:
    PROGRAMS.setdefault(kernel.program, kernel)


def _measure(fn) -> tuple[float, float]:
    tracemalloc.start()
    t0 = time.perf_counter()
    fn()
    elapsed = (time.perf_counter() - t0) * 1000.0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak / 1024.0


def _stage_rows():
    rows = []
    ratios = []
    for name, kernel in sorted(PROGRAMS.items()):
        src = kernel.source
        # memory: peak tracemalloc of frontend-only vs the full pipeline
        _, m_parse = _measure(lambda: analyze(parse_program(src)))
        panorama = Panorama(sizes=kernel.sizes, run_machine_model=False)
        _, m_full = _measure(lambda: panorama.compile(src))
        # time: one uninstrumented run, bars from the pipeline's own
        # per-stage clocks (tracemalloc would skew relative timings)
        result = panorama.compile(src)
        t = result.timings
        t_parse = (t.parse + t.frontend) * 1000.0
        t_conv = t_parse + t.conventional * 1000.0
        t_full = t.total * 1000.0
        stats = result.analyzer.stats
        rows.append(
            [
                name,
                f"{t_parse:.1f}",
                f"{t_conv:.1f}",
                f"{t_full:.1f}",
                f"{m_parse:.0f}",
                f"{m_full:.0f}",
                f"{t_full / max(t_parse, 1e-6):.1f}x",
                f"{m_full / max(m_parse, 1e-6):.1f}x",
                stats.nodes_visited,
                stats.peak_gar_list,
            ]
        )
        ratios.append((t_full / max(t_parse, 1e-6), m_full / max(m_parse, 1e-6)))
    return rows, ratios


def test_figure4(benchmark):
    rows, ratios = benchmark.pedantic(_stage_rows, rounds=1, iterations=1)
    table = format_table(
        ["program", "parse ms", "parse+conv ms", "full ms",
         "parse KiB", "full KiB", "time ratio", "mem ratio",
         "HSG visits", "peak GARs"],
        rows,
        title="Figure 4: analysis cost per program "
        "(paper: Panorama time < f77 -O; memory larger than f77)",
    )
    emit("figure4", table)
    # the figure's shape: full analysis within a small multiple of parsing
    # (the paper's Panorama bar is below f77 -O, roughly 2-4x its parser),
    # and the summaries cost extra memory
    for t_ratio, m_ratio in ratios:
        assert t_ratio < 200, table  # practicality: no blow-up
    assert any(m > 1.2 for _, m in ratios), table
