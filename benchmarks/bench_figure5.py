"""Figure 5 reproduction: the worked derivation for Figure 1(b).

Prints the derived summary sets in the order of the paper's trace and
checks the boxed conclusion (``ue_i ∩ mod_{<i} = ∅`` → A privatizable).
The timed portion is the loop-summary computation itself — the exact
work the figure walks through.
"""

from __future__ import annotations

from repro.dataflow import SummaryAnalyzer
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.kernels.figure1 import FIGURE_1B
from repro.privatize import test_privatizable as check_privatizable
from repro.regions.gar_ops import intersect_lists
from repro.symbolic import Comparer

from conftest import emit


def _derive():
    hsg = build_hsg(analyze(parse_program(FIGURE_1B)))
    analyzer = SummaryAnalyzer(hsg)
    unit, loop = next(
        (u, l) for u, l in hsg.all_loops() if l.var == "i"
    )
    record = analyzer.loop_record(unit, loop)
    return record, analyzer


def test_figure5(benchmark):
    record, analyzer = benchmark(_derive)
    cmp = Comparer()
    inter = intersect_lists(
        record.ue_i.for_array("a"), record.mod_lt.for_array("a"), cmp
    )
    verdict = check_privatizable("a", record, cmp)
    lines = [
        "Figure 5: privatizing array A in the example of Figure 1(b)",
        "=" * 64,
        "A.  ue_i(1), mod_i(1) after backward propagation:",
        f"    UE_i(a)   = {record.ue_i.for_array('a')}",
        f"    MOD_i(a)  = {record.mod_i.for_array('a')}",
        "B.  is array A privatizable?",
        f"    MOD_<i(a) = {record.mod_lt.for_array('a')}",
        f"    UE_i ∩ MOD_<i = {inter}   (provably empty: "
        f"{inter.provably_empty()})",
        f"    --> A is {'privatizable' if verdict.privatizable else 'NOT privatizable'}",
    ]
    emit("figure5", "\n".join(lines))
    assert inter.provably_empty()
    assert verdict.privatizable
