"""Supplementary: the complete per-loop verdict table for every kernel.

The paper's tables report only the privatization-critical loops; this
harness dumps the verdict for *every* DO loop in the five benchmark
programs (including inner loops and the serial driver phases), which is
the full output a compiler user would see, and checks global invariants:
every loop gets a verdict, and no Table-1 loop regresses.
"""

from __future__ import annotations

from repro import Panorama
from repro.driver.report import format_table, yes_no
from repro.kernels import KERNELS
from repro.parallelize import LoopStatus

from conftest import emit


def _all_verdicts():
    rows = []
    results = {}
    table1_keys = {(k.routine, k.loop_label) for k in KERNELS}
    table1_ok = True
    for kernel in KERNELS:
        if kernel.source in results:
            continue
        results[kernel.source] = (kernel.program, Panorama(
            sizes=kernel.sizes
        ).compile(kernel.source))
    for program, result in results.values():
        for report in result.loops:
            verdict = report.verdict
            rows.append(
                [
                    program,
                    report.loop_id(),
                    report.status.value,
                    yes_no(report.used_dataflow),
                    ", ".join(verdict.privatized) if verdict else "",
                    ", ".join(verdict.reductions + verdict.inductions)
                    if verdict
                    else "",
                    f"{report.speedup:.1f}x" if report.parallel else "-",
                    f"{report.pct_sequential:.1f}%",
                ]
            )
            if (report.routine, report.source_label) in table1_keys:
                kernel = next(
                    k
                    for k in KERNELS
                    if (k.routine, k.loop_label)
                    == (report.routine, report.source_label)
                )
                status = report.verdict.status_modulo(
                    frozenset(kernel.not_privatizable)
                )
                table1_ok = table1_ok and status is not LoopStatus.SERIAL
    return rows, table1_ok


def test_all_loops(benchmark):
    rows, table1_ok = benchmark.pedantic(_all_verdicts, rounds=1, iterations=1)
    table = format_table(
        ["program", "loop", "status", "dataflow", "privatized",
         "reductions/inductions", "speedup", "%seq"],
        rows,
        title="All loops of the five kernel programs",
    )
    emit("all_loops", table)
    assert table1_ok
    assert len(rows) >= 40  # the suite is not trivially small
