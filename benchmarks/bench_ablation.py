"""Design-choice ablations beyond Table 1's technique columns.

DESIGN.md calls out three load-bearing design decisions of the paper:

* **guards on regions** (the GAR itself) — ablated via T2 (guards become Δ);
* **the Fourier–Motzkin fallback prover** behind the pairwise simplifier;
* **the symbolic expression machinery** — ablated via T1.

For each configuration the harness reports how many of the twelve
Table-1 loops keep their designated privatizations and how long the
whole-suite analysis takes — quantifying both the precision and the cost
of each mechanism.
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisOptions, Panorama
from repro.driver.report import format_table
from repro.kernels import KERNELS

from conftest import emit

CONFIGS = [
    ("full", AnalysisOptions()),
    ("no FM prover", AnalysisOptions(use_fm=False)),
    ("no IF guards (T2 off)", AnalysisOptions(if_conditions=False)),
    ("no symbolic (T1 off)", AnalysisOptions(symbolic=False)),
    ("no interprocedural (T3 off)", AnalysisOptions(interprocedural=False)),
    (
        "conventional tests only",
        None,  # sentinel: dataflow disabled entirely
    ),
]


def _loops_privatized(options: AnalysisOptions | None) -> tuple[int, float]:
    t0 = time.perf_counter()
    count = 0
    cache: dict = {}
    for kernel in KERNELS:
        if options is None:
            # conventional-only: the screen never proves these loops
            continue
        if kernel.source not in cache:
            cache[kernel.source] = Panorama(
                options, run_machine_model=False
            ).compile(kernel.source)
        report = cache[kernel.source].loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization if report.verdict else None
        ok = bool(priv) and all(
            any(v.name == n and v.privatizable for v in priv.verdicts)
            for n in kernel.privatizable
        )
        count += ok
    return count, (time.perf_counter() - t0) * 1000.0


def test_ablation_study(benchmark):
    def run():
        return [(name, *_loops_privatized(opts)) for name, opts in CONFIGS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{count}/12", f"{ms:.0f}"] for name, count, ms in results
    ]
    table = format_table(
        ["configuration", "loops privatized", "suite analysis ms"],
        rows,
        title="Design ablations over the 12 Table-1 loops",
    )
    emit("ablation", table)
    by_name = {name: count for name, count, _ in results}
    assert by_name["full"] == 12
    assert by_name["no IF guards (T2 off)"] < 12
    assert by_name["no symbolic (T1 off)"] < 12
    assert by_name["no interprocedural (T3 off)"] < 12
    assert by_name["conventional tests only"] == 0


@pytest.mark.parametrize(
    "name,options",
    [(n, o) for n, o in CONFIGS if o is not None],
    ids=[n for n, o in CONFIGS if o is not None],
)
def test_config_time(benchmark, name, options):
    """Per-configuration analysis cost of the MDG program (the largest)."""
    from repro.kernels import get_kernel

    kernel = get_kernel("MDG", "interf", 1000)
    panorama = Panorama(options, run_machine_model=False)
    benchmark(panorama.compile, kernel.source)
