"""Analysis daemon benchmark: cold process per file vs resident daemon.

The CLI pays the full cost on every invocation — interpreter start,
imports, and a symbolically cold process.  The daemon pays it once:
every request after the first hits warm interning tables, proof memos,
and the content-addressed summary cache.  This benchmark measures that
gap over the kernel registry and asserts the daemon's verdicts stay
bit-identical to the one-process-per-file CLI ground truth.

``PANORAMA_BENCH_CHECK_ONLY=1`` (the CI smoke gate) trims the corpus to
two programs and skips every wall-clock assertion — identity checks
only, immune to loaded shared runners.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.driver.report import format_table
from repro.kernels import KERNELS
from repro.server import AnalysisService, PanoramaClient, ServerThread

from conftest import emit

CHECK_ONLY = bool(os.environ.get("PANORAMA_BENCH_CHECK_ONLY"))

#: one entry per distinct program text (kernels of one program share it)
PROGRAMS = list({k.source: k for k in KERNELS}.values())
if CHECK_ONLY:
    PROGRAMS = PROGRAMS[:2]

#: the src/ directory the subprocesses must import repro from
_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _cold_process_run(programs):
    """One fresh ``panorama --json`` process per program, like a build
    system or editor plugin shelling out would."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    verdicts = {}
    t0 = time.perf_counter()
    for kernel in programs:
        with tempfile.NamedTemporaryFile(
            "w", suffix=".f", delete=False
        ) as handle:
            handle.write(kernel.source)
            path = handle.name
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.driver.cli", path, "--json"],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
        finally:
            os.unlink(path)
        verdicts[kernel.full_id] = json.loads(proc.stdout)["loops"]
    return (time.perf_counter() - t0) * 1000.0, verdicts


def _daemon_pass(client, programs):
    """One request per program against a running daemon."""
    verdicts = {}
    t0 = time.perf_counter()
    for kernel in programs:
        payload = client.analyze(kernel.source, name=kernel.full_id)
        verdicts[kernel.full_id] = payload["loops"]
    return (time.perf_counter() - t0) * 1000.0, verdicts


def _bench_rows():
    cold_ms, cold_verdicts = _cold_process_run(PROGRAMS)

    service = AnalysisService()
    with ServerThread(service) as thread:
        client = PanoramaClient(port=thread.port)
        first_ms, first_verdicts = _daemon_pass(client, PROGRAMS)
        warm_ms, warm_verdicts = _daemon_pass(client, PROGRAMS)
        stats = client.stats()

    n = len(PROGRAMS)
    rows = [
        [
            "cold process per file (CLI)",
            n,
            f"{cold_ms:.0f}",
            f"{cold_ms / n:.1f}",
            "1.00x",
        ],
        [
            "resident daemon, first pass",
            n,
            f"{first_ms:.0f}",
            f"{first_ms / n:.1f}",
            f"{cold_ms / max(first_ms, 1e-9):.2f}x",
        ],
        [
            "resident daemon, warm pass",
            n,
            f"{warm_ms:.0f}",
            f"{warm_ms / n:.1f}",
            f"{cold_ms / max(warm_ms, 1e-9):.2f}x",
        ],
    ]
    checks = {
        "cold_ms": cold_ms,
        "first_ms": first_ms,
        "warm_ms": warm_ms,
        "first_identical": first_verdicts == cold_verdicts,
        "warm_identical": warm_verdicts == cold_verdicts,
        "summary_hits": stats["summary_cache"]["hits"],
        "responses_200": stats["responses"].get("200", 0),
    }
    return rows, checks


def test_server_throughput(benchmark):
    rows, checks = benchmark.pedantic(_bench_rows, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "programs", "wall ms", "ms/program",
         "speedup vs cold CLI"],
        rows,
        title=(
            f"Analysis daemon: {len(PROGRAMS)} registry program(s), "
            "cold-process-per-file vs resident requests"
        ),
    )
    emit("server", table)
    # the whole point of a daemon: same bits, different bill
    assert checks["first_identical"], table
    assert checks["warm_identical"], table
    assert checks["summary_hits"] > 0, table
    assert checks["responses_200"] >= 2 * len(PROGRAMS), table
    if CHECK_ONLY:
        return
    # a warm daemon request must beat forking a fresh interpreter; the
    # daemon's *first* pass already should (imports amortized)
    assert checks["warm_ms"] < checks["cold_ms"], table
    assert checks["first_ms"] < checks["cold_ms"], table
