"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one of the paper's tables/figures: it prints
the rows (and writes them under ``benchmarks/out/``) and times the
underlying analysis with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.stderr)
