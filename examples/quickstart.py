"""Quickstart: analyze a small Fortran loop nest for parallelization.

Run:  python examples/quickstart.py
"""

from repro import Panorama

SOURCE = """
      SUBROUTINE smooth(A, B, n, m)
      REAL A(1000), B(1000)
      INTEGER n, m, i, j
      REAL T(100)
      REAL s
      DO i = 1, n
C       fill a private working buffer for this iteration
        DO j = 1, m
          T(j) = A(j) * 0.5 + A(j+1) * 0.5
        ENDDO
C       consume it
        s = 0.0
        DO j = 1, m
          s = s + T(j)
        ENDDO
        B(i) = s
      ENDDO
      END
"""


def main() -> None:
    result = Panorama().compile(SOURCE)

    print("Per-loop verdicts")
    print("-----------------")
    for loop in result.loops:
        print(f"  {loop.loop_id():12} -> {loop.status.value}")
        if loop.verdict:
            for name in loop.verdict.privatized:
                print(f"      privatized: {name}")
            for name in loop.verdict.reductions:
                print(f"      reduction:  {name}")

    print()
    outer = result.loops[0]
    record = outer.verdict.record
    print(f"Summary sets of the outer loop (index {record.var}):")
    print(f"  MOD_i  = {record.mod_i}")
    print(f"  UE_i   = {record.ue_i}")
    print(f"  MOD_<i = {record.mod_lt}")
    print()
    print(
        "T is written before it is read in every iteration (UE_i has no T),"
    )
    print("so T is privatizable and the outer loop runs in parallel.")


if __name__ == "__main__":
    main()
