"""Run the Perfect-benchmark kernel suite (Tables 1 and 2 of the paper).

Prints the privatization status of every designated array (Table 2) and
the per-loop parallelization verdict with estimated speedup and share of
sequential time (Table 1).

Run:  python examples/perfect_suite.py
"""

from repro import Panorama
from repro.driver.report import format_table, yes_no
from repro.kernels import KERNELS


def main() -> None:
    rows_t2 = []
    rows_t1 = []
    compiled: dict[str, object] = {}
    for kernel in KERNELS:
        if kernel.source not in compiled:
            compiled[kernel.source] = Panorama(sizes=kernel.sizes).compile(
                kernel.source
            )
        result = compiled[kernel.source]
        report = result.loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization if report.verdict else None
        statuses = []
        for name in kernel.privatizable + kernel.not_privatizable:
            ok = bool(
                priv
                and any(
                    v.name == name and v.privatizable for v in priv.verdicts
                )
            )
            statuses.append(f"{name}:{yes_no(ok).lower()}")
        rows_t2.append(
            [kernel.program, kernel.loop_id, " ".join(statuses)]
        )
        rows_t1.append(
            [
                kernel.program,
                kernel.loop_id,
                report.status.value,
                f"{report.speedup:.1f}x" if report.parallel else "-",
                f"{report.pct_sequential:.0f}%",
                f"{kernel.paper_speedup:.1f}x",
                f"{kernel.paper_pct_seq:.0f}%",
            ]
        )

    print(
        format_table(
            ["program", "loop", "array privatization status"],
            rows_t2,
            title="Table 2 reproduction: privatizable arrays",
        )
    )
    print()
    print(
        format_table(
            ["program", "loop", "status", "est spdup", "est %seq",
             "paper spdup", "paper %seq"],
            rows_t1,
            title="Table 1 reproduction: loops parallel after privatization",
        )
    )


if __name__ == "__main__":
    main()
