"""Validate the analysis against a concrete execution trace.

The repository ships a concrete interpreter for the Fortran subset; this
example runs a kernel, collects its per-iteration access trace for the
outer loop, and checks the symbolic analysis' claims against reality —
the strongest evidence a "parallel" verdict can get.

Run:  python examples/validate_analysis.py
"""

from repro import Panorama
from repro.validate import validate_loop

SOURCE = """
      SUBROUTINE stencil(grid, out, n, m)
      REAL grid(60, 60), out(60, 60)
      INTEGER n, m, i, j
      REAL row(60)
      DO i = 2, n
        DO j = 2, m
          row(j) = grid(i, j) * 0.5 + grid(i - 1, j) * 0.5
        ENDDO
        DO j = 2, m
          out(i, j) = row(j) - row(j - 1)
        ENDDO
      ENDDO
      END
"""


def main() -> None:
    result = Panorama(run_machine_model=False).compile(SOURCE)
    outer = result.loops[0]
    print(f"analysis verdict: {outer.loop_id()} -> {outer.status.value}")
    print(f"  privatized: {', '.join(outer.verdict.privatized)}")
    print()

    grid = {(i, j): float(i + j) for i in range(1, 13) for j in range(1, 10)}
    report = validate_loop(
        SOURCE,
        "stencil",
        "i",
        args={"grid": grid, "out": {}, "n": 8, "m": 6},
    )
    print(f"executed {len(report.iterations)} iterations in the interpreter")
    print(f"containment-checked variables:   {sorted(report.checked)}")
    print(f"privatization claims verified:   {sorted(report.privatization_checked)}")
    print(f"violations:                      {report.violations or 'none'}")
    print()
    trace = report.iterations[2]
    print(f"sample trace (iteration i={trace.index_value}):")
    for name in sorted(trace.writes):
        print(f"  wrote {name}: {sorted(trace.writes[name])[:6]} ...")
    for name in sorted(trace.exposed_reads):
        print(
            f"  upward-exposed reads of {name}: "
            f"{sorted(trace.exposed_reads[name])[:6]} ..."
        )
    assert report.ok


if __name__ == "__main__":
    main()
