"""Technique ablation study: which of T1/T2/T3 each loop needs.

Reruns the analysis on every kernel with each technique disabled in turn
and reports whether the loop's designated arrays still privatize —
regenerating the last three columns of the paper's Table 1.

Run:  python examples/ablation_study.py
"""

from repro import AnalysisOptions, Panorama
from repro.driver.report import format_table
from repro.kernels import KERNELS


def arrays_privatized(kernel, options: AnalysisOptions) -> bool:
    result = Panorama(options, run_machine_model=False).compile(kernel.source)
    report = result.loop(kernel.routine, kernel.loop_label)
    priv = report.verdict.privatization if report.verdict else None
    if priv is None:
        return False
    return all(
        any(v.name == name and v.privatizable for v in priv.verdicts)
        for name in kernel.privatizable
    )


def main() -> None:
    rows = []
    mismatches = 0
    for kernel in KERNELS:
        needed = []
        for technique in ("T1", "T2", "T3"):
            ok = arrays_privatized(kernel, AnalysisOptions.ablation(technique))
            needed.append("Yes" if not ok else "No")
        expected = [
            "Yes" if t in kernel.techniques else "No"
            for t in ("T1", "T2", "T3")
        ]
        match = needed == expected
        mismatches += 0 if match else 1
        rows.append(
            [kernel.program, kernel.loop_id, *needed, *expected,
             "ok" if match else "MISMATCH"]
        )
    print(
        format_table(
            ["program", "loop", "T1", "T2", "T3",
             "paper T1", "paper T2", "paper T3", ""],
            rows,
            title="Technique ablations (T1 symbolic, T2 IF conditions, "
            "T3 interprocedural)",
        )
    )
    print()
    print(f"{len(KERNELS) - mismatches}/{len(KERNELS)} loops match Table 1")


if __name__ == "__main__":
    main()
