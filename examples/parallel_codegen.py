"""Generate directive-parallelized Fortran from the analysis results.

The paper marked parallel loops internally and noted code generation for
SGI Power Challenges was "underway"; this example completes the step with
both directive dialects.

Run:  python examples/parallel_codegen.py
"""

from repro import Panorama
from repro.codegen import annotate

SOURCE = """
      SUBROUTINE relax(grid, new, n, m, omega)
      REAL grid(10000), new(10000), omega
      INTEGER n, m, i, j
      REAL row(200)
      REAL rsum
      DO i = 2, n
C       build this row's stencil workspace (privatizable)
        DO j = 1, m
          row(j) = grid(j) * omega + grid(j+1) * (1.0 - omega)
        ENDDO
C       reduce it into the new grid row
        rsum = 0.0
        DO j = 1, m
          rsum = rsum + row(j)
        ENDDO
        new(i) = rsum / (1.0 * m)
      ENDDO
      END

      SUBROUTINE sumall(grid, n, total)
      REAL grid(10000), total
      INTEGER n, i
      DO i = 1, n
        total = total + grid(i)
      ENDDO
      END
"""


def main() -> None:
    result = Panorama().compile(SOURCE)
    for loop in result.loops:
        print(f"  {loop.loop_id():12} -> {loop.status.value}")
    print()
    print("--- OpenMP style " + "-" * 40)
    print(annotate(result, style="omp"))
    print("--- SGI DOACROSS style (the paper's target machine) " + "-" * 10)
    print(annotate(result, style="sgi"))


if __name__ == "__main__":
    main()
