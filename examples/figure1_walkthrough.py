"""Walk through the paper's three Figure 1 examples.

Prints, for each example, the per-iteration summary sets the analysis
derives (compare with the paper's Figure 5 trace for example (b)) and the
privatization verdicts, including the *negative* result for example (a):
the write of ``A`` is guarded by a condition on an array element, which is
outside the implementation's predicate language (paper section 5.2), so
``A`` — the paper's ``RL`` — is not automatically privatized.

Run:  python examples/figure1_walkthrough.py
"""

from repro import Panorama
from repro.kernels.figure1 import FIGURE_1A, FIGURE_1B, FIGURE_1C


def show(title: str, source: str, routine: str, index: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    result = Panorama(run_machine_model=False).compile(source)
    for loop in result.loops:
        if loop.routine == routine and loop.var == index:
            record = loop.verdict.record
            print(f"loop {index} of {routine}: {loop.status.value}")
            print(f"  UE_i   = {record.ue_i}")
            print(f"  MOD_i  = {record.mod_i}")
            print(f"  MOD_<i = {record.mod_lt}")
            if loop.verdict.privatization:
                for v in loop.verdict.privatization.verdicts:
                    mark = "yes" if v.privatizable else "NO "
                    print(f"  privatize {v.name:8} {mark}  ({v.reason})")
            print()


def main() -> None:
    show(
        "Figure 1(a) — MDG interf fragment: inference between IF conditions",
        FIGURE_1A,
        "interf",
        "i",
    )
    print(
        "A (the paper's RL) is NOT privatized: its write is guarded by\n"
        "B(K+4) > cut2 — a condition on an array element, which the\n"
        "implementation's predicates cannot express (needs the universal\n"
        "quantifier discussed in section 5.2). This reproduces the single\n"
        '"no" entry of the paper\'s Table 2.\n'
    )
    show(
        "Figure 1(b) — ARC2D filerx fragment: loop-invariant IF condition",
        FIGURE_1B,
        "filerx",
        "i",
    )
    print(
        "The guard p (loop invariant) appears in UE_i while the write\n"
        "carries .NOT.p: their intersection is empty, so A is privatizable\n"
        "and the I loop is parallel — the paper's Figure 5 derivation.\n"
    )
    show(
        "Figure 1(c) — OCEAN fragment: interprocedural complementary guards",
        FIGURE_1C,
        "main",
        "i",
    )
    print(
        "MOD(in) and UE(out) carry the same guard x <= SIZE, so the use\n"
        "inside `out` is always fed by the write inside `in` of the same\n"
        "iteration: UE_i(A) is empty and A is privatizable.\n"
    )


if __name__ == "__main__":
    main()
